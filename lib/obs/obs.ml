(* The registry is process-global and single-threaded, like every manager
   in this codebase. Handles are plain mutable records so the enabled-path
   update is a load, an add and a store; the disabled path is one load and
   a branch. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (* JSON has no inf/nan; telemetry times are finite unless a clock
     misbehaves, in which case 0 is the least-misleading stand-in. *)
  let float_repr f =
    if Float.is_nan f || Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" (if Float.is_nan f then 0.0 else f)
    else if Float.abs f = Float.infinity then "0.0"
    else Printf.sprintf "%.9g" f

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    write buf v;
    Buffer.contents buf

  let rec pp ppf = function
    | (Null | Bool _ | Int _ | Float _ | String _) as v -> Format.pp_print_string ppf (to_string v)
    | List [] -> Format.pp_print_string ppf "[]"
    | List items ->
      Format.fprintf ppf "[@;<0 2>@[<v>%a@]@,]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,") pp)
        items
    | Obj [] -> Format.pp_print_string ppf "{}"
    | Obj fields ->
      let field ppf (k, v) = Format.fprintf ppf "%s: %a" (to_string (String k)) pp v in
      Format.fprintf ppf "{@;<0 2>@[<v>%a@]@,}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,") field)
        fields

  exception Parse_error of int * string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (!pos, msg)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word value =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
        pos := !pos + String.length word;
        value
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'u' ->
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            let code = int_of_string ("0x" ^ String.sub s !pos 4) in
            pos := !pos + 4;
            (* report strings are ASCII; decode the BMP subset as UTF-8 *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
          | _ -> fail "bad escape")
        | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_float = ref false in
      let rec go () =
        match peek () with
        | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          go ()
        | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      let text = String.sub s start (!pos - start) in
      if !is_float then
        match float_of_string_opt text with Some f -> Float f | None -> fail "bad number"
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt text with Some f -> Float f | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields ((k, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (fields [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          List (items [])
        end
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing input";
      v
    with
    | v -> Ok v
    | exception Parse_error (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)
    | exception Failure msg -> Error msg

  let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
end

let enabled = ref false
let set_enabled b = enabled := b

type counter = { c_name : string; mutable c_value : int }

type span = {
  s_name : string;
  mutable s_count : int;
  mutable s_total : float;
  mutable s_max : float;
}

let hist_buckets = 63

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_bucket : int array; (* index = bit length of the value *)
}

(* Registries keep insertion order irrelevant: reports sort by name. *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let spans : (string, span) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let metadata : (string * string) list ref = ref []

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace counters name c;
    c

let incr c = if !enabled then c.c_value <- c.c_value + 1
let add c n = if !enabled then c.c_value <- c.c_value + n
let value c = c.c_value
let value_of name = match Hashtbl.find_opt counters name with Some c -> c.c_value | None -> 0

let span name =
  match Hashtbl.find_opt spans name with
  | Some s -> s
  | None ->
    let s = { s_name = name; s_count = 0; s_total = 0.0; s_max = 0.0 } in
    Hashtbl.replace spans name s;
    s

let record_span s dt =
  s.s_count <- s.s_count + 1;
  s.s_total <- s.s_total +. dt;
  if dt > s.s_max then s.s_max <- dt

let add_seconds s dt = if !enabled then record_span s dt

let with_span s f =
  if not !enabled then f ()
  else begin
    let watch = Util.Stopwatch.start () in
    Fun.protect ~finally:(fun () -> record_span s (Util.Stopwatch.elapsed watch)) f
  end

let span_count s = s.s_count
let span_seconds s = s.s_total

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        h_count = 0;
        h_sum = 0;
        h_min = max_int;
        h_max = 0;
        h_bucket = Array.make (hist_buckets + 1) 0;
      }
    in
    Hashtbl.replace histograms name h;
    h

let bit_length v =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let observe h v =
  if !enabled then begin
    let v = if v < 0 then 0 else v in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let i = bit_length v in
    let i = if i > hist_buckets then hist_buckets else i in
    h.h_bucket.(i) <- h.h_bucket.(i) + 1
  end

let hist_count h = h.h_count
let hist_sum h = h.h_sum

let meta key v = metadata := (key, v) :: List.remove_assoc key !metadata

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter
    (fun _ s ->
      s.s_count <- 0;
      s.s_total <- 0.0;
      s.s_max <- 0.0)
    spans;
  Hashtbl.iter
    (fun _ h ->
      h.h_count <- 0;
      h.h_sum <- 0;
      h.h_min <- max_int;
      h.h_max <- 0;
      Array.fill h.h_bucket 0 (Array.length h.h_bucket) 0)
    histograms;
  metadata := []

let sorted_fields tbl keep entry =
  Hashtbl.fold (fun name m acc -> if keep m then (name, entry m) :: acc else acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let bucket_bounds i = if i = 0 then (0, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

let hist_json h =
  let buckets =
    Array.to_list h.h_bucket
    |> List.mapi (fun i count -> (i, count))
    |> List.filter (fun (_, count) -> count > 0)
    |> List.map (fun (i, count) ->
           let lo, hi = bucket_bounds i in
           Json.Obj [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("count", Json.Int count) ])
  in
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Int h.h_sum);
      ("min", Json.Int (if h.h_count = 0 then 0 else h.h_min));
      ("max", Json.Int h.h_max);
      ("buckets", Json.List buckets);
    ]

let span_json s =
  Json.Obj
    [
      ("count", Json.Int s.s_count);
      ("seconds", Json.Float s.s_total);
      ("max_seconds", Json.Float s.s_max);
    ]

let report () =
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ( "meta",
        Json.Obj
          (List.sort compare (List.map (fun (k, v) -> (k, Json.String v)) !metadata)) );
      (* every registered counter, zero or not: consumers diff reports and
         rely on e.g. sweep.merge.sat being present even when the SAT
         engine never fired on an easy model *)
      ("counters", Json.Obj (sorted_fields counters (fun _ -> true) (fun c -> Json.Int c.c_value)));
      ("spans", Json.Obj (sorted_fields spans (fun s -> s.s_count <> 0) span_json));
      ("histograms", Json.Obj (sorted_fields histograms (fun h -> h.h_count <> 0) hist_json));
    ]

let write_report path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "%a@." Json.pp (report ()))

let pp_summary ppf () =
  let group name = match String.index_opt name '.' with Some i -> String.sub name 0 i | None -> name in
  let groups = Hashtbl.create 8 in
  let push name line =
    let g = group name in
    let existing = Option.value (Hashtbl.find_opt groups g) ~default:[] in
    Hashtbl.replace groups g (line :: existing)
  in
  Hashtbl.iter
    (fun name c -> if c.c_value <> 0 then push name (Printf.sprintf "%-36s %12d" name c.c_value))
    counters;
  Hashtbl.iter
    (fun name s ->
      if s.s_count <> 0 then
        push name
          (Printf.sprintf "%-36s %12d calls  %9.3fs total  %.3fs max" name s.s_count s.s_total
             s.s_max))
    spans;
  Hashtbl.iter
    (fun name h ->
      if h.h_count <> 0 then
        push name
          (Printf.sprintf "%-36s %12d obs    sum=%d min=%d max=%d" name h.h_count h.h_sum h.h_min
             h.h_max))
    histograms;
  let names = Hashtbl.fold (fun g _ acc -> g :: acc) groups [] |> List.sort compare in
  Format.fprintf ppf "run telemetry:@.";
  List.iter
    (fun g ->
      Format.fprintf ppf "  [%s]@." g;
      List.iter (Format.fprintf ppf "    %s@.") (List.sort compare (Hashtbl.find groups g)))
    names;
  match !metadata with
  | [] -> ()
  | kvs ->
    Format.fprintf ppf "  [meta]@.";
    List.iter (fun (k, v) -> Format.fprintf ppf "    %-36s %s@." k v) (List.sort compare kvs)
