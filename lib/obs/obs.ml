(* Facade over the observability layer. The implementation is split by
   concern — [Json] (serialization), [Registry] (aggregate metrics and
   run reports), [Trace_events] (timeline tracing), [Progress] (live
   frame reporting), [Regress] (report-tree diffing), [Sampler]
   (resource time-series) and [Store] (on-disk run-report store) — and
   re-exported here so call sites keep the flat [Obs.incr] /
   [Obs.Trace_events.*] spelling and the library presents one module. *)

module Json = Json
module Trace_events = Trace_events
module Progress = Progress
module Regress = Regress
module Limits = Limits_obs
module Sampler = Sampler
module Store = Store
include Registry
