(* Bench regression detection: diff two trees of JSON run reports (as
   written by `bench --stats-dir=DIR`, one numbered report per
   experiment row) and gate the deltas on a relative threshold, so CI
   can fail a PR that blows up a cost metric.

   Reports are paired by file name. Per pair, the comparable metrics
   are the counters, span call counts and histogram count/sum — the
   deterministic integers of a seeded run — plus span seconds, which
   are wall-clock noise and therefore only gated when an explicit time
   threshold is given. The gate is symmetric (a 10x drop in SAT calls
   deserves a look as much as a 10x rise); regenerate the baseline to
   acknowledge an intended change. *)

type delta = {
  metric : string; (* e.g. "counters.sweep.merge.sat", "spans.sat.solve.seconds" *)
  old_value : float;
  new_value : float;
  rel : float; (* |new - old| / old; infinity when old = 0 and new <> 0 *)
  timing : bool; (* true for span seconds: gated by the time threshold *)
}

type pair = {
  experiment : string;
  deltas : delta list;
  meta_diff : (string * string * string) list; (* key, old, new *)
}

type outcome = {
  pairs : pair list;
  only_old : string list; (* experiments present only in the old tree *)
  only_new : string list; (* experiments present only in the new tree *)
}

(* Schema window: v2 added provenance meta and the timeseries section
   without touching any v1 section, so both diff cleanly — CI compares
   checked-in v1 baselines against fresh v2 reports across the bump.
   Anything else (missing version, other versions, missing counters) is
   a malformed report and must fail structurally, not with a trace. *)
let supported_schemas = [ 1; 2 ]

let validate_report json =
  match json with
  | Json.Obj _ -> (
    match Json.member "schema_version" json with
    | Some (Json.Int v) when List.mem v supported_schemas -> (
      match Json.member "counters" json with
      | Some (Json.Obj _) -> Ok json
      | Some _ -> Error "\"counters\" is not an object"
      | None -> Error "missing \"counters\" section")
    | Some (Json.Int v) -> Error (Printf.sprintf "unsupported schema_version %d (supported: 1-2)" v)
    | Some _ -> Error "\"schema_version\" is not an integer"
    | None -> Error "missing \"schema_version\"")
  | _ -> Error "report is not a JSON object"

(* The provenance header: keys whose disagreement makes a diff
   suspect (different machine, different compiler, different schema).
   Only keys present on both sides count — pre-v2 reports carry no
   provenance and should not drown the diff in noise. *)
let provenance_keys = [ "schema_version"; "ocaml_version"; "word_size"; "hostname"; "git_commit" ]

let header_value json = function
  | "schema_version" -> (
    match Json.member "schema_version" json with
    | Some (Json.Int i) -> Some (string_of_int i)
    | _ -> None)
  | key -> (
    match Option.bind (Json.member "meta" json) (Json.member key) with
    | Some (Json.String s) -> Some s
    | _ -> None)

let meta_mismatches old_json new_json =
  List.filter_map
    (fun key ->
      match (header_value old_json key, header_value new_json key) with
      | Some o, Some n when o <> n -> Some (key, o, n)
      | _ -> None)
    provenance_keys

let rel_delta o n =
  if o = n then 0.0
  else if o = 0.0 then infinity
  else Float.abs (n -. o) /. Float.abs o

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

(* flatten one report into (metric, value, timing) triples *)
let metrics_of_report json =
  let acc = ref [] in
  let push metric v timing = acc := (metric, v, timing) :: !acc in
  let obj key = match Json.member key json with Some (Json.Obj fields) -> fields | _ -> [] in
  List.iter
    (fun (name, v) ->
      match number v with Some f -> push ("counters." ^ name) f false | None -> ())
    (obj "counters");
  List.iter
    (fun (name, v) ->
      (match Option.bind (Json.member "count" v) number with
      | Some f -> push ("spans." ^ name ^ ".count") f false
      | None -> ());
      match Option.bind (Json.member "seconds" v) number with
      | Some f -> push ("spans." ^ name ^ ".seconds") f true
      | None -> ())
    (obj "spans");
  List.iter
    (fun (name, v) ->
      (match Option.bind (Json.member "count" v) number with
      | Some f -> push ("histograms." ^ name ^ ".count") f false
      | None -> ());
      match Option.bind (Json.member "sum" v) number with
      | Some f -> push ("histograms." ^ name ^ ".sum") f false
      | None -> ())
    (obj "histograms");
  List.rev !acc

(* Deltas between two reports, changed metrics only. A metric present on
   one side only compares against 0 — spans and histograms are omitted
   from a report when never recorded into. *)
let compare_reports old_json new_json =
  let old_metrics = metrics_of_report old_json in
  let new_metrics = metrics_of_report new_json in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (m, v, timing) -> Hashtbl.replace tbl m (v, 0.0, timing))
    old_metrics;
  List.iter
    (fun (m, v, timing) ->
      match Hashtbl.find_opt tbl m with
      | Some (o, _, t) -> Hashtbl.replace tbl m (o, v, t || timing)
      | None -> Hashtbl.replace tbl m (0.0, v, timing))
    new_metrics;
  Hashtbl.fold
    (fun metric (o, n, timing) acc ->
      if o = n then acc
      else { metric; old_value = o; new_value = n; rel = rel_delta o n; timing } :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.metric b.metric)

let json_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort compare

let diff_dirs ~old_dir ~new_dir =
  let old_files = json_files old_dir and new_files = json_files new_dir in
  let load dir f =
    match Json.of_file (Filename.concat dir f) with
    | Ok json -> (
      match validate_report json with
      | Ok json -> json
      | Error msg -> raise (Sys_error (Printf.sprintf "%s/%s: invalid report: %s" dir f msg)))
    | Error msg -> raise (Sys_error (Printf.sprintf "%s/%s: unparsable report: %s" dir f msg))
  in
  let pairs =
    List.filter_map
      (fun f ->
        if List.mem f new_files then begin
          let o = load old_dir f and n = load new_dir f in
          Some
            {
              experiment = Filename.remove_extension f;
              deltas = compare_reports o n;
              meta_diff = meta_mismatches o n;
            }
        end
        else None)
      old_files
  in
  {
    pairs;
    only_old =
      List.filter_map
        (fun f -> if List.mem f new_files then None else Some (Filename.remove_extension f))
        old_files;
    only_new =
      List.filter_map
        (fun f -> if List.mem f old_files then None else Some (Filename.remove_extension f))
        new_files;
  }

(* the gate: timing metrics use [time_threshold] (None = never gated),
   everything else uses [threshold] *)
let exceeds ~threshold ~time_threshold d =
  if d.timing then match time_threshold with None -> false | Some t -> d.rel > t
  else d.rel > threshold

let regressions ~threshold ~time_threshold outcome =
  List.concat_map
    (fun p ->
      List.filter_map
        (fun d ->
          if exceeds ~threshold ~time_threshold d then Some (p.experiment, d) else None)
        p.deltas)
    outcome.pairs

(* pass = no gated delta and no experiment lost from the old tree;
   reports only present in the new tree are fine (coverage grew) *)
let passes ~threshold ~time_threshold outcome =
  outcome.only_old = [] && regressions ~threshold ~time_threshold outcome = []

let pp_delta ppf d =
  let pct = if Float.is_integer (d.rel *. 100.0) then "%.0f%%" else "%.1f%%" in
  Format.fprintf ppf "%-44s %14g -> %-14g %s" d.metric d.old_value d.new_value
    (if d.rel = infinity then "(new)" else Printf.sprintf (Scanf.format_from_string pct "%f") (d.rel *. 100.0))

let pp_outcome ~threshold ~time_threshold ppf outcome =
  (* provenance header: runs from different machines/compilers still
     diff, but the reader should know the ground shifted *)
  List.iter
    (fun (key, o, n) -> Format.fprintf ppf "meta: %s differs: %s -> %s@." key o n)
    (List.sort_uniq compare (List.concat_map (fun p -> p.meta_diff) outcome.pairs));
  List.iter
    (fun p ->
      match p.deltas with
      | [] -> ()
      | ds ->
        Format.fprintf ppf "%s:@." p.experiment;
        List.iter
          (fun d ->
            Format.fprintf ppf "  %s%a@."
              (if exceeds ~threshold ~time_threshold d then "! " else "  ")
              pp_delta d)
          ds)
    outcome.pairs;
  List.iter (Format.fprintf ppf "missing from new tree: %s@.") outcome.only_old;
  List.iter (Format.fprintf ppf "only in new tree: %s@.") outcome.only_new

(* ---------- cross-run trend ----------

   The store's `report trend` walks the last N runs of one
   model/engine family and diffs each consecutive pair, so a slowdown
   that crept in three runs ago is attributed to the step where it
   appeared rather than to the whole window. *)

type trend_step = {
  from_label : string;
  to_label : string;
  step_deltas : delta list;
  step_meta_diff : (string * string * string) list;
}

let trend labeled =
  let invalid =
    List.find_map
      (fun (label, json) ->
        match validate_report json with
        | Ok _ -> None
        | Error msg -> Some (Printf.sprintf "%s: invalid report: %s" label msg))
      labeled
  in
  match invalid with
  | Some msg -> Error msg
  | None ->
    let rec steps = function
      | (l1, j1) :: ((l2, j2) :: _ as rest) ->
        {
          from_label = l1;
          to_label = l2;
          step_deltas = compare_reports j1 j2;
          step_meta_diff = meta_mismatches j1 j2;
        }
        :: steps rest
      | _ -> []
    in
    Ok (steps labeled)

(* ---------- the cbq-bench-regress entry point ----------

   In-process and formatter-parametric so the exit-code contract (0
   within thresholds / 1 regression / 2 usage error or unreadable
   directory) and the stdout/stderr split are unit-testable; the
   bench/regress.ml executable is one line on top of this. *)

let main ?(out = Format.std_formatter) ?(err = Format.err_formatter) argv =
  let exception Quit of int in
  let usage () =
    Format.fprintf err
      "usage: cbq-bench-regress OLD_DIR NEW_DIR [--threshold=REL] [--time-threshold=REL] \
       [--only=PREFIX]@.";
    raise (Quit 2)
  in
  try
    let dirs = ref [] in
    let threshold = ref 0.1 in
    let time_threshold = ref None in
    let only : string list ref = ref [] in
    let float_arg name s =
      match float_of_string_opt s with
      | Some f when f >= 0.0 -> f
      | Some _ | None ->
        Format.fprintf err "cbq-bench-regress: %s expects a non-negative number, got %S@." name s;
        raise (Quit 2)
    in
    Array.iteri
      (fun i arg ->
        if i > 0 then
          match String.index_opt arg '=' with
          | Some eq when String.length arg > 2 && String.sub arg 0 2 = "--" ->
            let key = String.sub arg 0 eq in
            let value = String.sub arg (eq + 1) (String.length arg - eq - 1) in
            (match key with
            | "--threshold" -> threshold := float_arg key value
            | "--time-threshold" -> time_threshold := Some (float_arg key value)
            | "--only" -> only := value :: !only
            | _ -> usage ())
          | _ -> (
            match arg with
            | "--help" | "-h" -> usage ()
            | _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
            | _ -> dirs := arg :: !dirs))
      argv;
    let old_dir, new_dir = match List.rev !dirs with [ o; n ] -> (o, n) | _ -> usage () in
    List.iter
      (fun dir ->
        if not (Sys.file_exists dir && Sys.is_directory dir) then begin
          Format.fprintf err "cbq-bench-regress: %s is not a directory@." dir;
          raise (Quit 2)
        end)
      [ old_dir; new_dir ];
    let outcome =
      try diff_dirs ~old_dir ~new_dir
      with Sys_error msg ->
        Format.fprintf err "cbq-bench-regress: %s@." msg;
        raise (Quit 2)
    in
    (* --only narrows the diff to metrics under the given prefixes, so a
       bench mixing deterministic row counters with scheduling-dependent
       library counters (e.g. how far a cancelled racer got) can gate
       just the former *)
    let outcome =
      match !only with
      | [] -> outcome
      | prefixes ->
        let keep d = List.exists (fun p -> String.starts_with ~prefix:p d.metric) prefixes in
        {
          outcome with
          pairs = List.map (fun p -> { p with deltas = List.filter keep p.deltas }) outcome.pairs;
        }
    in
    let threshold = !threshold and time_threshold = !time_threshold in
    Format.fprintf out "%a" (pp_outcome ~threshold ~time_threshold) outcome;
    let gated = regressions ~threshold ~time_threshold outcome in
    let compared = List.length outcome.pairs in
    if passes ~threshold ~time_threshold outcome then begin
      Format.fprintf out "OK: %d report pair%s within %.0f%%%s@." compared
        (if compared = 1 then "" else "s")
        (threshold *. 100.0)
        (match time_threshold with
        | None -> " (timings not gated)"
        | Some t -> Printf.sprintf " (timings within %.0f%%)" (t *. 100.0));
      0
    end
    else begin
      Format.fprintf out "REGRESSION: %d gated delta%s, %d report%s missing from the new tree@."
        (List.length gated)
        (if List.length gated = 1 then "" else "s")
        (List.length outcome.only_old)
        (if List.length outcome.only_old = 1 then "" else "s");
      1
    end
  with Quit n -> n
