(* The metric registry: counters, spans, histograms, run metadata and
   the JSON run report. Process-global and domain-safe: counters are
   atomics (an [incr] from four domains loses no update), spans and
   histograms serialize their multi-field updates through a per-handle
   mutex, and the registration tables and metadata sit behind one
   registry mutex. The enabled-path counter update is a load, a branch
   and one lock-free fetch-and-add; the disabled path stays one load
   and a branch with no allocation. [Obs] re-exports everything here.

   [enabled] is a plain ref on purpose: flipping it mid-flight from
   another domain is a benign race (a racing update is either counted
   or not — exactly the semantics of a sampling switch), and keeping it
   plain keeps the disabled guard a single load. *)

let enabled = ref false
let set_enabled b = enabled := b

(* guards the registration tables, the metadata list and the report
   extras; never held while user code runs *)
let registry_mu = Mutex.create ()

let locked f =
  Mutex.lock registry_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mu) f

type counter = { c_name : string; c_cell : int Atomic.t }

type span = {
  s_name : string;
  s_mu : Mutex.t;
  mutable s_count : int;
  mutable s_total : float;
  mutable s_max : float;
}

let hist_buckets = 63

type histogram = {
  h_name : string;
  h_mu : Mutex.t;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_bucket : int array; (* index = bit length of the value *)
}

(* Registries keep insertion order irrelevant: reports sort by name. *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let spans : (string, span) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let metadata : (string * string) list ref = ref []

(* the sampler installs its "timeseries" report section here at stop;
   reset clears it with everything else *)
let timeseries_section : Json.t option ref = ref None
let set_timeseries ts = locked (fun () -> timeseries_section := ts)

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = { c_name = name; c_cell = Atomic.make 0 } in
        Hashtbl.replace counters name c;
        c)

let incr c = if !enabled then Atomic.incr c.c_cell
let add c n = if !enabled then ignore (Atomic.fetch_and_add c.c_cell n)
let value c = Atomic.get c.c_cell

let value_of name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with Some c -> Atomic.get c.c_cell | None -> 0)

let span name =
  locked (fun () ->
      match Hashtbl.find_opt spans name with
      | Some s -> s
      | None ->
        let s = { s_name = name; s_mu = Mutex.create (); s_count = 0; s_total = 0.0; s_max = 0.0 } in
        Hashtbl.replace spans name s;
        s)

let record_span s dt =
  Mutex.lock s.s_mu;
  s.s_count <- s.s_count + 1;
  s.s_total <- s.s_total +. dt;
  if dt > s.s_max then s.s_max <- dt;
  Mutex.unlock s.s_mu

let add_seconds s dt = if !enabled then record_span s dt

let with_span s f =
  if not !enabled then f ()
  else begin
    let watch = Util.Stopwatch.start () in
    Fun.protect ~finally:(fun () -> record_span s (Util.Stopwatch.elapsed watch)) f
  end

let span_count s = s.s_count
let span_seconds s = s.s_total

let histogram name =
  locked (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
        let h =
          {
            h_name = name;
            h_mu = Mutex.create ();
            h_count = 0;
            h_sum = 0;
            h_min = max_int;
            h_max = 0;
            h_bucket = Array.make (hist_buckets + 1) 0;
          }
        in
        Hashtbl.replace histograms name h;
        h)

let bit_length v =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let observe h v =
  if !enabled then begin
    let v = if v < 0 then 0 else v in
    Mutex.lock h.h_mu;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let i = bit_length v in
    let i = if i > hist_buckets then hist_buckets else i in
    h.h_bucket.(i) <- h.h_bucket.(i) + 1;
    Mutex.unlock h.h_mu
  end

let hist_count h = h.h_count
let hist_sum h = h.h_sum

let meta key v = locked (fun () -> metadata := (key, v) :: List.remove_assoc key !metadata)

let reset () =
  (* handle snapshots under the registry mutex, field resets under each
     handle's own mutex: reset never holds both at once *)
  let cs, ss, hs =
    locked (fun () ->
        metadata := [];
        timeseries_section := None;
        ( Hashtbl.fold (fun _ c acc -> c :: acc) counters [],
          Hashtbl.fold (fun _ s acc -> s :: acc) spans [],
          Hashtbl.fold (fun _ h acc -> h :: acc) histograms [] ))
  in
  List.iter (fun c -> Atomic.set c.c_cell 0) cs;
  List.iter
    (fun s ->
      Mutex.lock s.s_mu;
      s.s_count <- 0;
      s.s_total <- 0.0;
      s.s_max <- 0.0;
      Mutex.unlock s.s_mu)
    ss;
  List.iter
    (fun h ->
      Mutex.lock h.h_mu;
      h.h_count <- 0;
      h.h_sum <- 0;
      h.h_min <- max_int;
      h.h_max <- 0;
      Array.fill h.h_bucket 0 (Array.length h.h_bucket) 0;
      Mutex.unlock h.h_mu)
    hs

(* ---------- provenance ----------

   Stamped into every report's meta so stored runs are comparable
   across machines (the regression differ prints mismatches in its
   header). Computed once per process; explicit [meta] pairs of the
   same name win. *)

let read_first_line path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> String.trim (input_line ic))

(* resolve HEAD by hand (no subprocess): walk up from the cwd to the
   first .git, follow one level of symbolic ref, fall back to
   packed-refs. Any failure just omits the key. *)
let git_commit () =
  let rec find_git dir depth =
    if depth > 16 then None
    else
      let candidate = Filename.concat dir ".git" in
      if Sys.file_exists candidate then Some candidate
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else find_git parent (depth + 1)
  in
  try
    match find_git (Sys.getcwd ()) 0 with
    | None -> None
    | Some dotgit ->
      let gitdir =
        if Sys.is_directory dotgit then dotgit
        else
          (* worktree: ".git" is a file containing "gitdir: PATH" *)
          let line = read_first_line dotgit in
          let prefix = "gitdir: " in
          if String.length line > String.length prefix then
            String.sub line (String.length prefix) (String.length line - String.length prefix)
          else raise Exit
      in
      let head = read_first_line (Filename.concat gitdir "HEAD") in
      let ref_prefix = "ref: " in
      if String.length head >= 40 && not (String.length head > 5 && String.sub head 0 5 = "ref: ")
      then Some (String.sub head 0 40)
      else begin
        let refname =
          String.sub head (String.length ref_prefix) (String.length head - String.length ref_prefix)
        in
        let ref_file = Filename.concat gitdir refname in
        if Sys.file_exists ref_file then Some (read_first_line ref_file)
        else
          (* packed refs: lines of "<hash> <refname>" *)
          let packed = Filename.concat gitdir "packed-refs" in
          if not (Sys.file_exists packed) then None
          else begin
            let ic = open_in packed in
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () ->
                let found = ref None in
                (try
                   while !found = None do
                     let line = input_line ic in
                     if
                       String.length line > 41
                       && line.[0] <> '#'
                       && String.sub line 41 (String.length line - 41) = refname
                     then found := Some (String.sub line 0 40)
                   done
                 with End_of_file -> ());
                !found)
          end
      end
  with _ -> None

let provenance =
  lazy
    (let base =
       [
         ("ocaml_version", Sys.ocaml_version);
         ("word_size", string_of_int Sys.word_size);
         ("hostname", (try Unix.gethostname () with _ -> "unknown"));
       ]
     in
     match git_commit () with
     | Some hash -> base @ [ ("git_commit", hash) ]
     | None -> base)

let sorted_fields pairs keep entry =
  List.filter_map (fun (name, m) -> if keep m then Some (name, entry m) else None) pairs
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let bucket_bounds i = if i = 0 then (0, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

(* consistent snapshots of the multi-field accumulators *)
type span_snap = { sn_count : int; sn_total : float; sn_max : float }

type hist_snap = {
  hn_count : int;
  hn_sum : int;
  hn_min : int;
  hn_max : int;
  hn_bucket : int array;
}

let snap_span s =
  Mutex.lock s.s_mu;
  let snap = { sn_count = s.s_count; sn_total = s.s_total; sn_max = s.s_max } in
  Mutex.unlock s.s_mu;
  snap

let snap_hist h =
  Mutex.lock h.h_mu;
  let snap =
    {
      hn_count = h.h_count;
      hn_sum = h.h_sum;
      hn_min = h.h_min;
      hn_max = h.h_max;
      hn_bucket = Array.copy h.h_bucket;
    }
  in
  Mutex.unlock h.h_mu;
  snap

let hist_json h =
  let buckets =
    Array.to_list h.hn_bucket
    |> List.mapi (fun i count -> (i, count))
    |> List.filter (fun (_, count) -> count > 0)
    |> List.map (fun (i, count) ->
           let lo, hi = bucket_bounds i in
           Json.Obj [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("count", Json.Int count) ])
  in
  Json.Obj
    [
      ("count", Json.Int h.hn_count);
      ("sum", Json.Int h.hn_sum);
      ("min", Json.Int (if h.hn_count = 0 then 0 else h.hn_min));
      ("max", Json.Int h.hn_max);
      ("buckets", Json.List buckets);
    ]

let span_json s =
  Json.Obj
    [
      ("count", Json.Int s.sn_count);
      ("seconds", Json.Float s.sn_total);
      ("max_seconds", Json.Float s.sn_max);
    ]

(* The report schema version. 2 added the provenance meta keys and the
   optional "timeseries" section; every v1 section is unchanged, so
   consumers (and the regression differ) treat 1 and 2 as compatible. *)
let schema_version = 2

let report () =
  let counter_pairs, span_snaps, hist_snaps, meta_pairs, ts =
    locked (fun () ->
        ( Hashtbl.fold (fun name c acc -> (name, Atomic.get c.c_cell) :: acc) counters [],
          Hashtbl.fold (fun name s acc -> (name, snap_span s) :: acc) spans [],
          Hashtbl.fold (fun name h acc -> (name, snap_hist h) :: acc) histograms [],
          !metadata,
          !timeseries_section ))
  in
  let meta_pairs =
    List.fold_left
      (fun acc (k, v) -> if List.mem_assoc k acc then acc else (k, v) :: acc)
      meta_pairs (Lazy.force provenance)
  in
  let base =
    [
      ("schema_version", Json.Int schema_version);
      ( "meta",
        Json.Obj (List.sort compare (List.map (fun (k, v) -> (k, Json.String v)) meta_pairs)) );
      (* every registered counter, zero or not: consumers diff reports and
         rely on e.g. sweep.merge.sat being present even when the SAT
         engine never fired on an easy model *)
      ("counters", Json.Obj (sorted_fields counter_pairs (fun _ -> true) (fun v -> Json.Int v)));
      ("spans", Json.Obj (sorted_fields span_snaps (fun s -> s.sn_count <> 0) span_json));
      ("histograms", Json.Obj (sorted_fields hist_snaps (fun h -> h.hn_count <> 0) hist_json));
    ]
  in
  Json.Obj (match ts with None -> base | Some t -> base @ [ ("timeseries", t) ])

let write_report path =
  (* a report path under a directory that does not exist yet is routine
     (--stats-json out/run.json on a fresh checkout); create the parents *)
  Util.Fs.ensure_parent path;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "%a@." Json.pp (report ()))

let pp_summary ppf () =
  let counter_pairs, span_snaps, hist_snaps, meta_pairs =
    locked (fun () ->
        ( Hashtbl.fold (fun name c acc -> (name, Atomic.get c.c_cell) :: acc) counters [],
          Hashtbl.fold (fun name s acc -> (name, snap_span s) :: acc) spans [],
          Hashtbl.fold (fun name h acc -> (name, snap_hist h) :: acc) histograms [],
          !metadata ))
  in
  let group name = match String.index_opt name '.' with Some i -> String.sub name 0 i | None -> name in
  let groups = Hashtbl.create 8 in
  let push name line =
    let g = group name in
    let existing = Option.value (Hashtbl.find_opt groups g) ~default:[] in
    Hashtbl.replace groups g (line :: existing)
  in
  List.iter
    (fun (name, v) -> if v <> 0 then push name (Printf.sprintf "%-36s %12d" name v))
    counter_pairs;
  List.iter
    (fun (name, s) ->
      if s.sn_count <> 0 then
        push name
          (Printf.sprintf "%-36s %12d calls  %9.3fs total  %.3fs max" name s.sn_count s.sn_total
             s.sn_max))
    span_snaps;
  List.iter
    (fun (name, h) ->
      if h.hn_count <> 0 then
        push name
          (Printf.sprintf "%-36s %12d obs    sum=%d min=%d max=%d" name h.hn_count h.hn_sum
             h.hn_min h.hn_max))
    hist_snaps;
  let names = Hashtbl.fold (fun g _ acc -> g :: acc) groups [] |> List.sort compare in
  Format.fprintf ppf "run telemetry:@.";
  List.iter
    (fun g ->
      Format.fprintf ppf "  [%s]@." g;
      List.iter (Format.fprintf ppf "    %s@.") (List.sort compare (Hashtbl.find groups g)))
    names;
  match meta_pairs with
  | [] -> ()
  | kvs ->
    Format.fprintf ppf "  [meta]@.";
    List.iter (fun (k, v) -> Format.fprintf ppf "    %-36s %s@." k v) (List.sort compare kvs)
