(* The metric registry: counters, spans, histograms, run metadata and
   the JSON run report. Process-global and single-threaded, like every
   manager in this codebase. Handles are plain mutable records so the
   enabled-path update is a load, an add and a store; the disabled path
   is one load and a branch. [Obs] re-exports everything here. *)

let enabled = ref false
let set_enabled b = enabled := b

type counter = { c_name : string; mutable c_value : int }

type span = {
  s_name : string;
  mutable s_count : int;
  mutable s_total : float;
  mutable s_max : float;
}

let hist_buckets = 63

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_bucket : int array; (* index = bit length of the value *)
}

(* Registries keep insertion order irrelevant: reports sort by name. *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let spans : (string, span) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let metadata : (string * string) list ref = ref []

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace counters name c;
    c

let incr c = if !enabled then c.c_value <- c.c_value + 1
let add c n = if !enabled then c.c_value <- c.c_value + n
let value c = c.c_value
let value_of name = match Hashtbl.find_opt counters name with Some c -> c.c_value | None -> 0

let span name =
  match Hashtbl.find_opt spans name with
  | Some s -> s
  | None ->
    let s = { s_name = name; s_count = 0; s_total = 0.0; s_max = 0.0 } in
    Hashtbl.replace spans name s;
    s

let record_span s dt =
  s.s_count <- s.s_count + 1;
  s.s_total <- s.s_total +. dt;
  if dt > s.s_max then s.s_max <- dt

let add_seconds s dt = if !enabled then record_span s dt

let with_span s f =
  if not !enabled then f ()
  else begin
    let watch = Util.Stopwatch.start () in
    Fun.protect ~finally:(fun () -> record_span s (Util.Stopwatch.elapsed watch)) f
  end

let span_count s = s.s_count
let span_seconds s = s.s_total

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        h_count = 0;
        h_sum = 0;
        h_min = max_int;
        h_max = 0;
        h_bucket = Array.make (hist_buckets + 1) 0;
      }
    in
    Hashtbl.replace histograms name h;
    h

let bit_length v =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let observe h v =
  if !enabled then begin
    let v = if v < 0 then 0 else v in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let i = bit_length v in
    let i = if i > hist_buckets then hist_buckets else i in
    h.h_bucket.(i) <- h.h_bucket.(i) + 1
  end

let hist_count h = h.h_count
let hist_sum h = h.h_sum

let meta key v = metadata := (key, v) :: List.remove_assoc key !metadata

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter
    (fun _ s ->
      s.s_count <- 0;
      s.s_total <- 0.0;
      s.s_max <- 0.0)
    spans;
  Hashtbl.iter
    (fun _ h ->
      h.h_count <- 0;
      h.h_sum <- 0;
      h.h_min <- max_int;
      h.h_max <- 0;
      Array.fill h.h_bucket 0 (Array.length h.h_bucket) 0)
    histograms;
  metadata := []

let sorted_fields tbl keep entry =
  Hashtbl.fold (fun name m acc -> if keep m then (name, entry m) :: acc else acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let bucket_bounds i = if i = 0 then (0, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

let hist_json h =
  let buckets =
    Array.to_list h.h_bucket
    |> List.mapi (fun i count -> (i, count))
    |> List.filter (fun (_, count) -> count > 0)
    |> List.map (fun (i, count) ->
           let lo, hi = bucket_bounds i in
           Json.Obj [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("count", Json.Int count) ])
  in
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Int h.h_sum);
      ("min", Json.Int (if h.h_count = 0 then 0 else h.h_min));
      ("max", Json.Int h.h_max);
      ("buckets", Json.List buckets);
    ]

let span_json s =
  Json.Obj
    [
      ("count", Json.Int s.s_count);
      ("seconds", Json.Float s.s_total);
      ("max_seconds", Json.Float s.s_max);
    ]

let report () =
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ( "meta",
        Json.Obj
          (List.sort compare (List.map (fun (k, v) -> (k, Json.String v)) !metadata)) );
      (* every registered counter, zero or not: consumers diff reports and
         rely on e.g. sweep.merge.sat being present even when the SAT
         engine never fired on an easy model *)
      ("counters", Json.Obj (sorted_fields counters (fun _ -> true) (fun c -> Json.Int c.c_value)));
      ("spans", Json.Obj (sorted_fields spans (fun s -> s.s_count <> 0) span_json));
      ("histograms", Json.Obj (sorted_fields histograms (fun h -> h.h_count <> 0) hist_json));
    ]

let write_report path =
  (* a report path under a directory that does not exist yet is routine
     (--stats-json out/run.json on a fresh checkout); create the parents *)
  Util.Fs.ensure_parent path;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "%a@." Json.pp (report ()))

let pp_summary ppf () =
  let group name = match String.index_opt name '.' with Some i -> String.sub name 0 i | None -> name in
  let groups = Hashtbl.create 8 in
  let push name line =
    let g = group name in
    let existing = Option.value (Hashtbl.find_opt groups g) ~default:[] in
    Hashtbl.replace groups g (line :: existing)
  in
  Hashtbl.iter
    (fun name c -> if c.c_value <> 0 then push name (Printf.sprintf "%-36s %12d" name c.c_value))
    counters;
  Hashtbl.iter
    (fun name s ->
      if s.s_count <> 0 then
        push name
          (Printf.sprintf "%-36s %12d calls  %9.3fs total  %.3fs max" name s.s_count s.s_total
             s.s_max))
    spans;
  Hashtbl.iter
    (fun name h ->
      if h.h_count <> 0 then
        push name
          (Printf.sprintf "%-36s %12d obs    sum=%d min=%d max=%d" name h.h_count h.h_sum h.h_min
             h.h_max))
    histograms;
  let names = Hashtbl.fold (fun g _ acc -> g :: acc) groups [] |> List.sort compare in
  Format.fprintf ppf "run telemetry:@.";
  List.iter
    (fun g ->
      Format.fprintf ppf "  [%s]@." g;
      List.iter (Format.fprintf ppf "    %s@.") (List.sort compare (Hashtbl.find groups g)))
    names;
  match !metadata with
  | [] -> ()
  | kvs ->
    Format.fprintf ppf "  [meta]@.";
    List.iter (fun (k, v) -> Format.fprintf ppf "    %-36s %s@." k v) (List.sort compare kvs)
