(* Structured event tracing: a growable ring buffer of begin/end phase
   events, instant events and counter samples, exported as Chrome
   trace_event JSON (chrome://tracing, Perfetto). Complements the
   aggregate counters of [Registry]: aggregates answer "how much",
   the timeline answers "when".

   Overhead contract (mirrors the registry's): the disabled path of
   every recording entry point is one load of [enabled] and a branch —
   no allocation, so the recording calls may sit on hot paths (the SAT
   solve wrapper, per-variable quantification). The enabled path stores
   five fields into preallocated parallel arrays; the only allocation
   is the occasional geometric growth of those arrays, and none at all
   once the buffer has reached its size limit and wraps.

   The buffer keeps the NEWEST events: once [limit] events have been
   recorded the ring overwrites the oldest. Begin/end pairs broken by
   the overwrite are repaired at export time (orphaned ends are dropped,
   unclosed begins are closed at the final timestamp), so the emitted
   JSON always nests properly.

   Domains: every event is stamped with the id of the domain that
   emitted it, exported as the Chrome-trace [tid] — each domain of a
   portfolio race or sweep pool renders as its own lane instead of the
   events interleaving into one broken nest. Recording serializes on
   one mutex (the enabled path was already a handful of array stores;
   the disabled path stays a single load and branch, lock-free and
   allocation-free). Balance repair at export is per-lane. *)

let enabled = ref false

type event = {
  ev_name : string;
  ev_ph : char; (* 'B' begin | 'E' end | 'i' instant | 'C' counter sample *)
  ev_ts : float; (* microseconds since the trace epoch, non-decreasing *)
  ev_tid : int; (* id of the emitting domain *)
  ev_arg_key : string; (* "" when the event carries no argument *)
  ev_arg_value : int;
}

let default_limit = 1 lsl 16
let initial_capacity = 1024

(* parallel arrays: one record-free slot per event *)
let names = ref (Array.make 0 "")
let phs = ref (Bytes.create 0)
let tss = ref (Array.make 0 0.0)
let tids = ref (Array.make 0 0)
let arg_keys = ref (Array.make 0 "")
let arg_vals = ref (Array.make 0 0)
let capacity = ref 0
let size_limit = ref default_limit
let total = ref 0 (* events ever recorded since the last reset *)
let epoch = ref (Util.Stopwatch.start ())
let last_ts = ref 0.0

(* serializes the enabled recording path across domains; the disabled
   path never touches it *)
let lock = Mutex.create ()

let reset ?limit () =
  (match limit with
  | Some l ->
    if l < 2 then invalid_arg "Trace_events.reset: limit must be >= 2";
    size_limit := l
  | None -> ());
  names := Array.make 0 "";
  phs := Bytes.create 0;
  tss := Array.make 0 0.0;
  tids := Array.make 0 0;
  arg_keys := Array.make 0 "";
  arg_vals := Array.make 0 0;
  capacity := 0;
  total := 0;
  epoch := Util.Stopwatch.start ();
  last_ts := 0.0

let set_enabled b =
  if b && not !enabled then epoch := Util.Stopwatch.start ();
  enabled := b

let limit () = !size_limit
let recorded () = !total
let dropped () = if !total > !size_limit then !total - !size_limit else 0

let grow () =
  let new_cap =
    if !capacity = 0 then min initial_capacity !size_limit
    else min (!capacity * 2) !size_limit
  in
  let copy make blit old =
    let fresh = make new_cap in
    blit old fresh !capacity;
    fresh
  in
  names :=
    copy (fun n -> Array.make n "") (fun o f n -> Array.blit o 0 f 0 n) !names;
  phs := copy Bytes.create (fun o f n -> Bytes.blit o 0 f 0 n) !phs;
  tss := copy (fun n -> Array.make n 0.0) (fun o f n -> Array.blit o 0 f 0 n) !tss;
  tids := copy (fun n -> Array.make n 0) (fun o f n -> Array.blit o 0 f 0 n) !tids;
  arg_keys :=
    copy (fun n -> Array.make n "") (fun o f n -> Array.blit o 0 f 0 n) !arg_keys;
  arg_vals :=
    copy (fun n -> Array.make n 0) (fun o f n -> Array.blit o 0 f 0 n) !arg_vals;
  capacity := new_cap

(* [Util.Stopwatch] is monotonic (CLOCK_MONOTONIC), so elapsed times
   are non-decreasing by construction — no clamping needed. [last_ts]
   is kept for closing unbalanced begins at export time. *)
let timestamp_us () = Util.Stopwatch.elapsed !epoch *. 1e6

(* the recorder with an explicit timestamp: the resource sampler
   replays its time-series as counter rows after the fact, at the
   timestamps the samples were actually taken. Serialized on [lock] so
   racing domains never tear a slot; the emitting domain's id is
   stamped as the event's lane. *)
let record_ts name ph key v ts =
  let tid = (Domain.self () :> int) in
  Mutex.lock lock;
  if !total >= !capacity && !capacity < !size_limit then grow ();
  let i = !total mod !size_limit in
  !names.(i) <- name;
  Bytes.set !phs i ph;
  !tss.(i) <- ts;
  !tids.(i) <- tid;
  if ts > !last_ts then last_ts := ts;
  !arg_keys.(i) <- key;
  !arg_vals.(i) <- v;
  total := !total + 1;
  Mutex.unlock lock

(* the unguarded recorder: every public entry point checks [enabled]
   before calling, keeping the disabled path allocation-free *)
let record name ph key v = record_ts name ph key v (timestamp_us ())

let begin_ name = if !enabled then record name 'B' "" 0
let begin_args name key v = if !enabled then record name 'B' key v
let end_ name = if !enabled then record name 'E' "" 0
let end_args name key v = if !enabled then record name 'E' key v
let instant name = if !enabled then record name 'i' "" 0
let instant_args name key v = if !enabled then record name 'i' key v
let sample name v = if !enabled then record name 'C' "value" v
let sample_at ts name v = if !enabled then record_ts name 'C' "value" v ts

let with_phase name f =
  if not !enabled then f ()
  else begin
    record name 'B' "" 0;
    Fun.protect ~finally:(fun () -> end_ name) f
  end

let retained () = min !total !size_limit

(* oldest-first snapshot of the ring *)
let events () =
  Mutex.lock lock;
  let n = retained () in
  let first = if !total <= !size_limit then 0 else !total mod !size_limit in
  let evs =
    List.init n (fun k ->
        let i = (first + k) mod !size_limit in
        {
          ev_name = !names.(i);
          ev_ph = Bytes.get !phs i;
          ev_ts = !tss.(i);
          ev_tid = !tids.(i);
          ev_arg_key = !arg_keys.(i);
          ev_arg_value = !arg_vals.(i);
        })
  in
  Mutex.unlock lock;
  evs

let category name =
  match String.index_opt name '.' with Some i -> String.sub name 0 i | None -> name

let event_json e =
  let base =
    [
      ("name", Json.String e.ev_name);
      ("cat", Json.String (category e.ev_name));
      ("ph", Json.String (String.make 1 e.ev_ph));
      ("ts", Json.Float e.ev_ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int e.ev_tid);
    ]
  in
  let base = if e.ev_ph = 'i' then base @ [ ("s", Json.String "t") ] else base in
  let base =
    if e.ev_arg_key = "" && e.ev_ph <> 'C' then base
    else
      base
      @ [
          ( "args",
            Json.Obj
              [
                ( (if e.ev_arg_key = "" then "value" else e.ev_arg_key),
                  Json.Int e.ev_arg_value );
              ] );
        ]
  in
  Json.Obj base

(* Ring wraparound can orphan duration events: an 'E' whose 'B' was
   overwritten, or a 'B' whose 'E' was never recorded (exporting
   mid-run). Repair instead of emitting broken nesting: orphaned ends
   are dropped, unclosed begins are closed at the last timestamp.
   Balance is per lane — each domain nests independently, so an end
   from one domain must never pop a begin from another. *)
let balanced_events () =
  let evs = events () in
  let stacks : (int, event list) Hashtbl.t = Hashtbl.create 4 in
  let stack_of tid = Option.value (Hashtbl.find_opt stacks tid) ~default:[] in
  let keep =
    List.filter
      (fun e ->
        match e.ev_ph with
        | 'B' ->
          Hashtbl.replace stacks e.ev_tid (e :: stack_of e.ev_tid);
          true
        | 'E' -> (
          match stack_of e.ev_tid with
          | _ :: rest ->
            Hashtbl.replace stacks e.ev_tid rest;
            true
          | [] -> false)
        | _ -> true)
      evs
  in
  let final_ts = !last_ts in
  let closers =
    Hashtbl.fold
      (fun _ stack acc ->
        List.map
          (fun b -> { b with ev_ph = 'E'; ev_ts = final_ts; ev_arg_key = ""; ev_arg_value = 0 })
          stack
        @ acc)
      stacks []
  in
  keep @ closers

(* Replayed sampler rows ([sample_at]) carry capture-time timestamps
   but sit at the end of the ring, so the buffer is not globally
   ts-ordered. Viewers sort on load, but the exported JSON promises
   non-decreasing timestamps — restore the order here. The sort is
   stable: begin/end pairs at equal timestamps keep their nesting. *)
let to_json () =
  let evs =
    List.stable_sort (fun a b -> compare a.ev_ts b.ev_ts) (balanced_events ())
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_json evs));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("recorded", Json.Int (recorded ()));
            ("dropped", Json.Int (dropped ()));
          ] );
    ]

let write path =
  Util.Fs.ensure_parent path;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "%a@." Json.pp (to_json ()))
