(* Zero-dependency JSON values, serializer and parser — enough to write
   run reports and trace files and read them back in tests and table
   generators. Exposed to users as [Obs.Json]; the sibling modules
   ([Registry], [Trace_events], [Regress]) use it directly so the facade
   module stays dependency-free of them. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* JSON has no inf/nan; telemetry times are finite unless a clock
   misbehaves, in which case 0 is the least-misleading stand-in. *)
let float_repr f =
  if Float.is_nan f || Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" (if Float.is_nan f then 0.0 else f)
  else if Float.abs f = Float.infinity then "0.0"
  else Printf.sprintf "%.9g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let rec pp ppf = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> Format.pp_print_string ppf (to_string v)
  | List [] -> Format.pp_print_string ppf "[]"
  | List items ->
    Format.fprintf ppf "[@;<0 2>@[<v>%a@]@,]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,") pp)
      items
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
    let field ppf (k, v) = Format.fprintf ppf "%s: %a" (to_string (String k)) pp v in
    Format.fprintf ppf "{@;<0 2>@[<v>%a@]@,}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,") field)
      fields

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          (* report strings are ASCII; decode the BMP subset as UTF-8 *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end;
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
        advance ();
        go ()
      | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with Some f -> Float f | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        List (items [])
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)
  | exception Failure msg -> Error msg

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

(* [of_file path] reads and parses a whole file; used by the regression
   differ and the tests. *)
let of_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string (String.trim text)
