(* Live traversal progress on stderr: one line per reachability frame
   with the frame index, the AIG node count of the frontier, the merge
   counts by provenance (read from the registry, so collection must be
   enabled) and the elapsed wall time. On a TTY the line is rewritten in
   place; on a pipe each frame gets its own line.

   The traversal engines notify through [frame]; like every other
   recording entry point in [Obs], its disabled path (no [start] call)
   is one load and a branch. *)

let active = ref false
let out = ref stderr
let is_tty = ref false
let watch = ref (Util.Stopwatch.start ())
let last_width = ref 0

(* [?tty] overrides the isatty detection — tests exercising the
   in-place rewrite path capture output through a pipe *)
let start ?(channel = stderr) ?tty () =
  out := channel;
  is_tty :=
    (match tty with
    | Some b -> b
    | None -> (
      try Unix.isatty (Unix.descr_of_out_channel channel) with Unix.Unix_error _ -> false));
  watch := Util.Stopwatch.start ();
  last_width := 0;
  active := true

let render ~index ~nodes =
  Printf.sprintf "frame %4d  frontier=%d nodes  merges hash=%d sim=%d bdd=%d sat=%d  %.1fs"
    index nodes
    (Registry.value_of "sweep.merge.hash")
    (Registry.value_of "sweep.merge.sim")
    (Registry.value_of "sweep.merge.bdd")
    (Registry.value_of "sweep.merge.sat")
    (Util.Stopwatch.elapsed !watch)

let emit line =
  if !is_tty then begin
    (* pad with spaces so a shorter line fully overwrites the previous *)
    let pad = max 0 (!last_width - String.length line) in
    Printf.fprintf !out "\r%s%s%!" line (String.make pad ' ');
    last_width := String.length line
  end
  else Printf.fprintf !out "%s\n%!" line

(* Cross-domain frame listener: the serve scheduler routes frame
   notifications to the client whose job runs on the emitting domain.
   An atomic so installation from the scheduler races benignly with
   notifications from worker domains. *)
let listener : (domain:int -> index:int -> nodes:int -> unit) option Atomic.t = Atomic.make None

let set_listener f = Atomic.set listener f

let frame ~index ~nodes =
  (match Atomic.get listener with
  | Some f -> f ~domain:(Domain.self () :> int) ~index ~nodes
  | None -> ());
  if !active then emit (render ~index ~nodes)

(* Traversal engines notify here at run entry: without it, back-to-back
   runs in one process (bench rows, tests) would report elapsed times
   measured from the single explicit [start] call — stale by however
   long the earlier runs took. *)
let begin_run () =
  if !active then begin
    watch := Util.Stopwatch.start ();
    if !is_tty && !last_width > 0 then Printf.fprintf !out "\n%!";
    last_width := 0
  end

let finish () =
  if !active then begin
    if !is_tty && !last_width > 0 then Printf.fprintf !out "\n%!";
    active := false;
    last_width := 0
  end
