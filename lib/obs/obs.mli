(** Unified telemetry: hierarchical named counters, monotonic spans and
    histogram accumulators behind one global registry, with a
    machine-readable JSON run report.

    Every subsystem registers its metrics once (at module initialisation)
    under dotted hierarchical names — ["sweep.merge.bdd"],
    ["sat.solve_calls"] — and updates them through handles. Collection is
    {e disabled by default} and guarded by a single flat [enabled] flag:
    the disabled path of {!incr}/{!add}/{!observe} is one boolean load and
    a branch, with no allocation, so instrumentation may sit on hot paths
    (the AIG strash front-end, SAT propagation accounting).

    {!with_span} does allocate its closure at the call site even when
    disabled; use it at coarse granularity only (an iteration, a solve
    call) and prefer {!add_seconds} with an existing measurement where a
    stopwatch is already running.

    The report schema is documented in [docs/OBSERVABILITY.md]; this
    module is its single source of truth. *)

(** {1 JSON}

    Zero-dependency JSON values, serializer and parser — enough to write
    run reports and read them back in tests and table generators. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  (** Compact single-line serialization. Non-finite floats are clamped to
      [0] (JSON has no [inf]/[nan]). *)
  val to_string : t -> string

  (** Pretty serialization, two-space indent. *)
  val pp : Format.formatter -> t -> unit

  (** Strict parser for the subset {!to_string} emits (standard JSON minus
      exotic escapes). [Error msg] carries a byte offset. *)
  val of_string : string -> (t, string) result

  (** [member key json] is the value under [key] of an object. *)
  val member : string -> t -> t option
end

(** {1 Collection switch} *)

(** The flat guard every update checks. Exposed as a [ref] so the check
    compiles to one load; prefer {!set_enabled} for writing. *)
val enabled : bool ref

val set_enabled : bool -> unit

(** Zero every registered metric and drop all run metadata. Registration
    itself (names, handles) is permanent for the process. *)
val reset : unit -> unit

(** {1 Counters} *)

type counter

(** [counter name] registers (or retrieves — names are unique) a counter.
    Dots in [name] express hierarchy: ["sweep.merge.sat"]. *)
val counter : string -> counter

(** One boolean load and an in-place add when enabled; no-op otherwise. *)
val incr : counter -> unit

val add : counter -> int -> unit
val value : counter -> int

(** [value_of name] is the current value of the counter registered under
    [name], or [0] when no such counter exists. For tests and table
    generators; prefer handles elsewhere. *)
val value_of : string -> int

(** {1 Spans}

    A span accumulates wall-clock time over repeated executions of one
    region: call count, total seconds, and the longest single execution. *)

type span

val span : string -> span

(** [with_span s f] times [f ()] (via [Util.Stopwatch]) and accumulates
    into [s]; when collection is disabled it runs [f ()] directly. The
    measurement is recorded even when [f] raises. *)
val with_span : span -> (unit -> 'a) -> 'a

(** Record an externally measured duration (for regions that already keep
    a stopwatch, or recursive loops where nesting would double-count). *)
val add_seconds : span -> float -> unit

val span_count : span -> int
val span_seconds : span -> float

(** {1 Histograms}

    Power-of-two bucketed accumulators over non-negative integers (sizes,
    conflict counts): bucket 0 holds the value 0, bucket [i ≥ 1] the
    values in [[2{^i-1}, 2{^i})]. Count, sum, min and max are exact;
    only the distribution is bucketed. *)

type histogram

val histogram : string -> histogram

(** Negative values are clamped to 0. *)
val observe : histogram -> int -> unit

val hist_count : histogram -> int
val hist_sum : histogram -> int

(** {1 Run reports} *)

(** [meta key value] attaches a run-level string pair ([model], [engine],
    [verdict], …) to the next report; replaces on equal [key]. Metadata
    ignores the [enabled] guard — stamping a report after a disabled run
    is legitimate. *)
val meta : string -> string -> unit

(** The full report as JSON — see [docs/OBSERVABILITY.md] for the schema.
    Metric maps are flat objects keyed by the dotted names, sorted. Every
    registered counter appears, including zero-valued ones (consumers diff
    reports across runs); spans and histograms never recorded into since
    the last {!reset} are omitted. *)
val report : unit -> Json.t

(** {!report} pretty-printed to a file. *)
val write_report : string -> unit

(** Human-readable roll-up of every non-zero metric, grouped by the first
    name segment. *)
val pp_summary : Format.formatter -> unit -> unit
