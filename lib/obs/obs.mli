(** Unified observability: hierarchical named counters, monotonic spans
    and histogram accumulators behind one global registry with a
    machine-readable JSON run report, plus structured timeline tracing
    ({!Trace_events}), a live progress reporter ({!Progress}) and a
    run-report regression differ ({!Regress}).

    Every subsystem registers its metrics once (at module initialisation)
    under dotted hierarchical names — ["sweep.merge.bdd"],
    ["sat.solve_calls"] — and updates them through handles. Collection is
    {e disabled by default} and guarded by a single flat [enabled] flag:
    the disabled path of {!incr}/{!add}/{!observe} is one boolean load and
    a branch, with no allocation, so instrumentation may sit on hot paths
    (the AIG strash front-end, SAT propagation accounting).

    {!with_span} does allocate its closure at the call site even when
    disabled; use it at coarse granularity only (an iteration, a solve
    call) and prefer {!add_seconds} with an existing measurement where a
    stopwatch is already running.

    {b Domain safety.} The registry is safe under OCaml 5 domains:
    counters are atomics (concurrent {!incr}/{!add} lose no update and
    {!report} reads exact totals), spans and histograms serialize their
    multi-field updates through a per-handle mutex, and registration,
    metadata and report assembly go through one registry mutex. The
    disabled guard stays a single unsynchronized load — flipping
    {!enabled} while other domains record is a benign race. The
    timeline trace ({!Trace_events}) records from any domain: the ring
    serializes on one mutex and stamps every event with the emitting
    domain's id, so each domain renders as its own Chrome-trace lane
    ([tid]) instead of interleaving into one broken nest.
    {!Trace_events.reset} and the export calls remain owner-domain
    operations — quiesce worker domains first.

    The report schema is documented in [docs/OBSERVABILITY.md]; this
    module is its single source of truth. *)

(** {1 JSON}

    Zero-dependency JSON values, serializer and parser — enough to write
    run reports and trace files and read them back in tests and table
    generators. *)

module Json : sig
  type t = Json.t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  (** Compact single-line serialization. Non-finite floats are clamped to
      [0] (JSON has no [inf]/[nan]). *)
  val to_string : t -> string

  (** Pretty serialization, two-space indent. *)
  val pp : Format.formatter -> t -> unit

  (** Strict parser for the subset {!to_string} emits (standard JSON minus
      exotic escapes). [Error msg] carries a byte offset. *)
  val of_string : string -> (t, string) result

  (** Read and parse a whole file. *)
  val of_file : string -> (t, string) result

  (** [member key json] is the value under [key] of an object. *)
  val member : string -> t -> t option
end

(** {1 Collection switch} *)

(** The flat guard every update checks. Exposed as a [ref] so the check
    compiles to one load; prefer {!set_enabled} for writing. *)
val enabled : bool ref

val set_enabled : bool -> unit

(** Zero every registered metric and drop all run metadata. Registration
    itself (names, handles) is permanent for the process. *)
val reset : unit -> unit

(** {1 Counters} *)

type counter

(** [counter name] registers (or retrieves — names are unique) a counter.
    Dots in [name] express hierarchy: ["sweep.merge.sat"]. *)
val counter : string -> counter

(** One boolean load and an in-place add when enabled; no-op otherwise. *)
val incr : counter -> unit

val add : counter -> int -> unit
val value : counter -> int

(** [value_of name] is the current value of the counter registered under
    [name], or [0] when no such counter exists. For tests and table
    generators; prefer handles elsewhere. *)
val value_of : string -> int

(** {1 Spans}

    A span accumulates wall-clock time over repeated executions of one
    region: call count, total seconds, and the longest single execution. *)

type span

val span : string -> span

(** [with_span s f] times [f ()] (via [Util.Stopwatch]) and accumulates
    into [s]; when collection is disabled it runs [f ()] directly. The
    measurement is recorded even when [f] raises. *)
val with_span : span -> (unit -> 'a) -> 'a

(** Record an externally measured duration (for regions that already keep
    a stopwatch, or recursive loops where nesting would double-count). *)
val add_seconds : span -> float -> unit

val span_count : span -> int
val span_seconds : span -> float

(** {1 Histograms}

    Power-of-two bucketed accumulators over non-negative integers (sizes,
    conflict counts): bucket 0 holds the value 0, bucket [i ≥ 1] the
    values in [[2{^i-1}, 2{^i})]. Count, sum, min and max are exact;
    only the distribution is bucketed. *)

type histogram

val histogram : string -> histogram

(** Negative values are clamped to 0. *)
val observe : histogram -> int -> unit

val hist_count : histogram -> int
val hist_sum : histogram -> int

(** {1 Run reports} *)

(** [meta key value] attaches a run-level string pair ([model], [engine],
    [verdict], …) to the next report; replaces on equal [key]. Metadata
    ignores the [enabled] guard — stamping a report after a disabled run
    is legitimate. *)
val meta : string -> string -> unit

(** The full report as JSON — see [docs/OBSERVABILITY.md] for the schema.
    Metric maps are flat objects keyed by the dotted names, sorted. Every
    registered counter appears, including zero-valued ones (consumers diff
    reports across runs); spans and histograms never recorded into since
    the last {!reset} are omitted. *)
val report : unit -> Json.t

(** {!report} pretty-printed to a file. Missing parent directories of the
    path are created. *)
val write_report : string -> unit

(** Human-readable roll-up of every non-zero metric, grouped by the first
    name segment. *)
val pp_summary : Format.formatter -> unit -> unit

(** {1 Timeline tracing}

    Structured begin/end phase events, instant events and counter samples
    in a growable ring buffer, exported as Chrome [trace_event] JSON
    loadable by [chrome://tracing] and Perfetto. Guarded by its own flat
    [enabled] flag with the same disabled-path contract as the metric
    updates above: one load, one branch, no allocation. The trace-event
    model and phase names are documented in [docs/OBSERVABILITY.md]. *)

module Trace_events : sig
  (** The recording guard; independent from the metric registry's. *)
  val enabled : bool ref

  (** Enabling (re)starts the trace clock. *)
  val set_enabled : bool -> unit

  (** Drop every recorded event and restart the clock. [?limit] also
      changes the ring size (events retained before the oldest are
      overwritten; default 65536, must be ≥ 2). *)
  val reset : ?limit:int -> unit -> unit

  val limit : unit -> int

  (** Events recorded since the last reset, including overwritten ones. *)
  val recorded : unit -> int

  (** Events lost to ring wraparound ([recorded () - limit ()], min 0). *)
  val dropped : unit -> int

  (** Open / close a duration phase. The [_args] variants attach one
      integer argument ([key], [value]) without allocating on the
      disabled path. Phases nest; unbalanced pairs caused by ring
      wraparound are repaired at export time. *)
  val begin_ : string -> unit

  val begin_args : string -> string -> int -> unit
  val end_ : string -> unit
  val end_args : string -> string -> int -> unit

  (** A point-in-time marker (Chrome phase ['i']). *)
  val instant : string -> unit

  val instant_args : string -> string -> int -> unit

  (** A counter sample (Chrome phase ['C']): the timeline view of a value
      over the run, e.g. the frontier size per frame. *)
  val sample : string -> int -> unit

  (** Microseconds on the trace-epoch timeline right now, without
      recording anything. Safe to call from any domain (it only reads
      the monotonic clock); pair with {!sample_at}. *)
  val timestamp_us : unit -> float

  (** [sample_at ts name v] records a counter sample at an explicit
      timestamp (from {!timestamp_us}) — how the resource sampler
      replays points captured on another domain after the fact (the
      export re-sorts them into place). *)
  val sample_at : float -> string -> int -> unit

  (** [with_phase name f] wraps [f ()] in a begin/end pair (closed on
      exceptions too). Allocates its closure even when disabled — prefer
      explicit {!begin_}/{!end_} on hot paths. *)
  val with_phase : string -> (unit -> 'a) -> 'a

  type event = Trace_events.event = {
    ev_name : string;
    ev_ph : char;  (** ['B'] begin, ['E'] end, ['i'] instant, ['C'] counter *)
    ev_ts : float;
        (** microseconds since the trace epoch; non-decreasing in recording
            order except for {!sample_at} replays, which carry their
            capture-time timestamps (the export re-sorts) *)
    ev_tid : int;
        (** id of the emitting domain, exported as the Chrome [tid] — each
            domain of a portfolio race or sweep pool gets its own lane *)
    ev_arg_key : string;  (** [""] when the event carries no argument *)
    ev_arg_value : int;
  }

  (** Recording-order snapshot of the ring (oldest surviving event
      first), raw (no balance repair, no re-sorting). *)
  val events : unit -> event list

  (** The Chrome trace: [{"traceEvents": [...], "displayTimeUnit": "ms",
      "otherData": {...}}], every event carrying [name]/[cat]/[ph]/[ts]/
      [pid]/[tid], stably sorted by timestamp (replayed sampler rows merge
      into place). Begin/end balance is repaired (orphaned ends dropped,
      unclosed begins closed at the final timestamp). *)
  val to_json : unit -> Json.t

  (** {!to_json} pretty-printed to a file; parent directories are
      created. *)
  val write : string -> unit
end

(** {1 Live progress}

    One stderr line per traversal frame — frame index, frontier AIG node
    count, merges by provenance, elapsed time — rewritten in place on a
    TTY. Reads the merge counters from the registry, so metric collection
    must be enabled for the provenance columns to move. *)

module Progress : sig
  (** Arm the reporter (records the start time, detects whether
      [channel] — default [stderr] — is a TTY; [?tty] overrides the
      detection, for tests capturing output through a pipe). *)
  val start : ?channel:out_channel -> ?tty:bool -> unit -> unit

  (** Traversal-engine notification at run entry: restarts the elapsed
      clock (and terminates any in-place line), so back-to-back runs in
      one process never report stale elapsed times. A no-op unless
      armed. *)
  val begin_run : unit -> unit

  (** Notification from the traversal engines; a no-op unless armed.
      Independently of the stderr reporter, an installed {!set_listener}
      hook receives every notification. *)
  val frame : index:int -> nodes:int -> unit

  (** Install (or clear) a cross-domain frame listener: called on every
      {!frame} notification with the emitting domain's id, whether or
      not the stderr reporter is armed. The serve scheduler uses this to
      stream per-frame progress events to the client that owns the job
      running on that domain. The hook itself must be domain-safe — it
      is invoked from whichever domain runs the traversal. *)
  val set_listener : (domain:int -> index:int -> nodes:int -> unit) option -> unit

  (** Terminate the in-place line and disarm. *)
  val finish : unit -> unit
end

(** {1 Resource-governor bridge}

    [Util.Limits] lives below this library, so it cannot emit metrics
    itself; {!Limits.arm} installs its notify hook. The counters are
    [limits.exhausted] (total fatal trips) and
    [limits.exhausted.{deadline,conflicts,aig_nodes,bdd_nodes}], plus a
    [limits.exhausted] trace instant whose [resource] argument encodes
    the tripped resource (0 deadline, 1 conflicts, 2 aig, 3 bdd). *)

module Limits : sig
  (** Install the metric-emitting notify hook on a governor and return
      it. The traversal engines arm every governor they receive, so
      explicit arming is only needed for governors used outside an
      engine run. *)
  val arm : Util.Limits.t -> Util.Limits.t
end

(** {1 Resource time-series sampling}

    A background domain that periodically snapshots counter values, GC
    heap statistics and the governor's remaining budgets while a run
    executes. {!Sampler.stop} installs the series as the run report's
    ["timeseries"] section (see [docs/OBSERVABILITY.md] for the point
    schema) and replays it into the trace as Chrome counter rows under
    [sampler.*] names, so resource curves render on the phase
    timeline. The CLI wires this to [--sample-interval]. *)

module Sampler : sig
  type t

  (** 0.05 s. *)
  val default_interval : float

  (** The counters sampled when [?counters] is omitted: SAT pressure
      and fixed-point progress. *)
  val default_counters : string list

  (** Take the [t = 0] sample and spawn the sampling domain. [interval]
      is seconds between samples (default {!default_interval}, must be
      positive); [counters] names the registry counters to record;
      [limits] adds the governor's remaining budgets (deadline seconds,
      conflict pool, BDD pool, AIG headroom) to every point. *)
  val start :
    ?interval:float -> ?counters:string list -> ?limits:Util.Limits.t -> unit -> t

  (** Join the sampling domain, take the closing sample (every series
      has ≥ 2 points), install the ["timeseries"] report section and
      replay the trace rows. Call from the domain that owns the trace;
      idempotent. *)
  val stop : t -> unit
end

(** {1 Run-report store}

    Append-only on-disk store of run reports: one directory holding
    [runs.jsonl] (a compact report per line) and [index.json], a
    derived meta index that makes listing cheap. The data file is the
    source of truth — a missing or stale index is rebuilt by scanning
    it, and a torn tail (crash mid-append) is cut back to the last
    line that parses. The [cbq_mc report] subcommands are the
    command-line front-end. *)

module Store : sig
  type t

  type entry = Store.entry = {
    id : int;  (** 1-based position in the data file *)
    offset : int;
    length : int;
    stored_at : string;  (** UTC, stamped into the report meta at append *)
    model : string;
    engine : string;
    verdict : string;
  }

  (** Open (creating the directory if needed): the indexed prefix is
      adopted from [index.json], the unindexed tail of the data file is
      scanned, and a missing or inconsistent index triggers a full
      rebuild — all under the store's inter-process lock. *)
  val open_ : string -> t

  val dir : t -> string

  (** All indexed runs, oldest first. *)
  val entries : t -> entry list

  (** Append a report (stamping [stored_at] into its meta first). The
      data line is written immediately; the meta index is rewritten on
      a doubling schedule (O(1) amortized per append — N appends
      serialize O(N) index entries in total), so it may lag the data
      file until {!flush} or the next rewrite point. Appends take an
      exclusive [Unix.lockf] lock on the store directory and re-sync
      against the file first, so concurrent processes sharing one store
      (a serve daemon plus CLI runs) interleave safely with unique
      ids. *)
  val append : t -> Json.t -> entry

  (** Write the index now if it lags the data file. Call at daemon
      shutdown or after a batch of appends; opening a store with a
      lagging index is still correct (the unindexed tail is scanned),
      just marginally slower. *)
  val flush : t -> unit

  (** Load one stored report by id. *)
  val load : t -> int -> (entry * Json.t, string) result

  (** The last [?last] runs matching the meta filters, oldest first. *)
  val select : ?model:string -> ?engine:string -> ?last:int -> t -> entry list
end

(** {1 Bench regression detection}

    Diff two trees of JSON run reports (as written by
    [bench --stats-dir=DIR]) and gate per-metric relative deltas, so CI
    can fail a change that blows up a cost metric. Reports are paired by
    file name; deterministic integer metrics (counters, span call counts,
    histogram count/sum) gate on [threshold], wall-clock span seconds
    only on an explicit [time_threshold]. The [cbq_bench_regress]
    executable in [bench/] is the command-line front-end. *)

module Regress : sig
  type delta = Regress.delta = {
    metric : string;
        (** flattened name: ["counters.sweep.merge.sat"],
            ["spans.sat.solve.seconds"], … *)
    old_value : float;
    new_value : float;
    rel : float;  (** |new − old| / |old|; [infinity] when old = 0 *)
    timing : bool;  (** span seconds: gated by [time_threshold] only *)
  }

  type pair = Regress.pair = {
    experiment : string;
    deltas : delta list;
    meta_diff : (string * string * string) list;
        (** provenance keys whose values disagree: (key, old, new) *)
  }

  type outcome = Regress.outcome = {
    pairs : pair list;
    only_old : string list;
    only_new : string list;
  }

  (** Structural validation: [Ok] for a JSON object with a supported
      [schema_version] (1 or 2 — v2 only added sections) and a
      [counters] object; [Error] names the defect in one line. Every
      report entering {!diff_dirs} or {!trend} passes through this. *)
  val validate_report : Json.t -> (Json.t, string) result

  (** Provenance keys ([schema_version], [ocaml_version], [word_size],
      [hostname], [git_commit]) present on both sides with different
      values, as (key, old, new). Printed by {!pp_outcome} as a diff
      header. *)
  val meta_mismatches : Json.t -> Json.t -> (string * string * string) list

  (** Changed metrics between two parsed reports (a metric present on one
      side only compares against 0). Sorted by metric name. *)
  val compare_reports : Json.t -> Json.t -> delta list

  (** Pair the [*.json] files of two directories by name and diff each
      pair. *)
  val diff_dirs : old_dir:string -> new_dir:string -> outcome

  val exceeds : threshold:float -> time_threshold:float option -> delta -> bool

  (** Every gated delta, tagged with its experiment. *)
  val regressions :
    threshold:float -> time_threshold:float option -> outcome -> (string * delta) list

  (** [true] iff nothing gates and no experiment vanished from the old
      tree (reports only present in the new tree are fine — coverage
      grew). *)
  val passes : threshold:float -> time_threshold:float option -> outcome -> bool

  type trend_step = Regress.trend_step = {
    from_label : string;
    to_label : string;
    step_deltas : delta list;
    step_meta_diff : (string * string * string) list;
  }

  (** Diff each consecutive pair of a labeled report sequence (oldest
      first), attributing drift to the step where it appeared. [Error]
      when any report fails {!validate_report}. *)
  val trend : (string * Json.t) list -> (trend_step list, string) result

  val pp_delta : Format.formatter -> delta -> unit

  (** Human-readable listing of every changed metric, gated ones marked
      with [!]. *)
  val pp_outcome :
    threshold:float -> time_threshold:float option -> Format.formatter -> outcome -> unit

  (** The [cbq-bench-regress] command line, in-process: diff the two
      trees named by [argv] and return the exit status — 0 within
      thresholds, 1 on a regression, 2 on a usage error or unreadable
      directory. [--only=PREFIX] (repeatable) narrows the diff to
      flattened metric names under the given prefixes, for benches that
      mix deterministic row counters with scheduling-dependent library
      counters. The delta listing and verdict go to [out] (default
      stdout); usage and diagnostics go to [err] (default stderr). *)
  val main : ?out:Format.formatter -> ?err:Format.formatter -> string array -> int
end
