(* Append-only on-disk run-report store: one directory holding
   [runs.jsonl] (one compact report per line, append-only) plus
   [index.json], a derived meta index (id, byte range, model, engine,
   verdict, stored_at per run) that makes [cbq_mc report list/trend]
   cheap — listing never parses report bodies.

   The data file is the source of truth. The index is allowed to lag
   behind it: appends rewrite it on a doubling schedule (whenever the
   unindexed tail outgrows the indexed prefix), so N appends serialize
   O(N) index entries in total — O(1) amortized per append — instead of
   re-serializing the whole index every time. On open, the indexed
   prefix is trusted and only the unindexed tail is scanned; a missing
   or inconsistent index triggers a full rebuild. A torn tail (the
   process died mid-append, or the file was truncated) is repaired
   during the scan: the file is cut back to the last line that parses.
   Index writes are atomic (tmp + rename), so a crash never leaves a
   half-written index.

   Concurrency. Writers can race from different processes — a serve
   daemon appending job reports while a `cbq_mc run --store DIR`
   appends its own, or two CLI runs — so every append, rebuild and
   by-offset load holds an [Unix.lockf] advisory lock on [DIR/.lock]
   (exclusive for mutation, shared for reads). An append re-syncs the
   in-memory view against the file under the lock before writing, so
   ids stay unique and offsets correct no matter how many processes
   share the directory. The lock is per-process (fcntl semantics):
   sharing one [t] between domains of one process still needs external
   serialization (the serve scheduler funnels appends through a
   mutex). *)

type entry = {
  id : int; (* 1-based position in the data file *)
  offset : int;
  length : int; (* line length, newline excluded *)
  stored_at : string;
  model : string;
  engine : string;
  verdict : string;
}

type t = {
  dir : string;
  data_path : string;
  index_path : string;
  lock_fd : Unix.file_descr;
  mutable rev_entries : entry list; (* newest first *)
  mutable count : int;
  mutable last_id : int;
  mutable data_length : int;
  mutable indexed_count : int; (* entries covered by the on-disk index *)
}

let index_version = 1

let data_file = "runs.jsonl"
let index_file = "index.json"
let lock_file = ".lock"

let obs_appends = Registry.counter "store.appends"
let obs_index_writes = Registry.counter "store.index.writes"
let obs_index_entries = Registry.counter "store.index.entries"
let obs_rebuilds = Registry.counter "store.rebuilds"
let obs_catchup = Registry.counter "store.catchup_lines"

let dir t = t.dir
let entries t = List.rev t.rev_entries

(* ---------- advisory locking ---------- *)

(* [lockf] locks hang off the dedicated [lock_fd], whose offset never
   moves, so the whole file is covered ([len = 0]). Exclusive for
   anything that may write or truncate; shared for by-offset reads. *)
let with_lock_kind kind t f =
  Unix.lockf t.lock_fd kind 0;
  Fun.protect ~finally:(fun () -> Unix.lockf t.lock_fd Unix.F_ULOCK 0) f

let with_lock t f = with_lock_kind Unix.F_LOCK t f
let with_read_lock t f = with_lock_kind Unix.F_RLOCK t f

let meta_string report key =
  match Option.bind (Json.member "meta" report) (Json.member key) with
  | Some (Json.String s) -> s
  | _ -> ""

let entry_of_report ~id ~offset ~length report =
  {
    id;
    offset;
    length;
    stored_at = meta_string report "stored_at";
    model = meta_string report "model";
    engine = meta_string report "engine";
    verdict = meta_string report "verdict";
  }

(* ---------- index (de)serialization ---------- *)

let entry_json e =
  Json.Obj
    [
      ("id", Json.Int e.id);
      ("offset", Json.Int e.offset);
      ("length", Json.Int e.length);
      ("stored_at", Json.String e.stored_at);
      ("model", Json.String e.model);
      ("engine", Json.String e.engine);
      ("verdict", Json.String e.verdict);
    ]

let index_json t =
  Json.Obj
    [
      ("store_version", Json.Int index_version);
      ("data_length", Json.Int t.data_length);
      ("entries", Json.List (List.rev_map entry_json t.rev_entries));
    ]

let write_index t =
  let tmp = t.index_path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (index_json t)));
  Sys.rename tmp t.index_path;
  t.indexed_count <- t.count;
  Registry.incr obs_index_writes;
  Registry.add obs_index_entries t.count

(* The doubling schedule: rewrite once the unindexed tail outgrows the
   indexed prefix. Rewrites land at counts 1, 3, 7, 15, … so the total
   entries serialized over N appends is < 2N. *)
let index_due t = t.count - t.indexed_count > t.indexed_count

let entry_of_json j =
  let int key = match Json.member key j with Some (Json.Int i) -> Some i | _ -> None in
  let str key = match Json.member key j with Some (Json.String s) -> s | _ -> "" in
  match (int "id", int "offset", int "length") with
  | Some id, Some offset, Some length ->
    Some
      {
        id;
        offset;
        length;
        stored_at = str "stored_at";
        model = str "model";
        engine = str "engine";
        verdict = str "verdict";
      }
  | _ -> None

let read_index t =
  if not (Sys.file_exists t.index_path) then None
  else
    match Json.of_file t.index_path with
    | Error _ -> None
    | Ok j -> (
      match (Json.member "store_version" j, Json.member "data_length" j, Json.member "entries" j)
      with
      | Some (Json.Int v), Some (Json.Int len), Some (Json.List es) when v = index_version -> (
        let entries = List.map entry_of_json es in
        if List.exists Option.is_none entries then None
        else
          match List.filter_map (fun e -> e) entries with
          | es -> Some (len, es))
      | _ -> None)

(* ---------- scanning the data file ---------- *)

let data_size t = if Sys.file_exists t.data_path then (Unix.stat t.data_path).Unix.st_size else 0

let push_entry t e =
  t.rev_entries <- e :: t.rev_entries;
  t.count <- t.count + 1;
  t.last_id <- e.id

(* Scan the JSONL from [offset], indexing every line that parses. Stops
   at the first line that does not parse or is not newline-terminated (a
   torn append) and truncates the file back to that point. Exclusive
   lock required (it may truncate). *)
let scan_from t ~offset =
  let good_end = ref offset in
  if Sys.file_exists t.data_path then begin
    let ic = open_in_bin t.data_path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let file_len = in_channel_length ic in
        seek_in ic offset;
        let stop = ref false in
        while not !stop do
          let offset = pos_in ic in
          match input_line ic with
          | exception End_of_file -> stop := true
          | line ->
            let terminated = pos_in ic = offset + String.length line + 1 in
            let complete = terminated || pos_in ic < file_len in
            if not complete then stop := true (* torn tail: no final newline *)
            else (
              match Json.of_string line with
              | Error _ -> stop := true
              | Ok report ->
                push_entry t
                  (entry_of_report ~id:(t.last_id + 1) ~offset ~length:(String.length line)
                     report);
                Registry.incr obs_catchup;
                good_end := offset + String.length line + 1)
        done)
  end;
  if data_size t > !good_end then Unix.truncate t.data_path !good_end;
  t.data_length <- !good_end

(* Full rebuild: drop the in-memory view and re-scan from byte 0.
   Exclusive lock required. *)
let rebuild t =
  Registry.incr obs_rebuilds;
  t.rev_entries <- [];
  t.count <- 0;
  t.last_id <- 0;
  t.indexed_count <- 0;
  scan_from t ~offset:0;
  write_index t

(* Bring the in-memory view up to date with the file — another process
   may have appended (scan the new tail) or repaired/truncated it
   (rebuild). Exclusive lock required. *)
let resync t =
  let size = data_size t in
  if size < t.data_length then rebuild t
  else if size > t.data_length then scan_from t ~offset:t.data_length

let open_ dir =
  Util.Fs.mkdirs dir;
  let lock_fd =
    Unix.openfile (Filename.concat dir lock_file) [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ]
      0o644
  in
  let t =
    {
      dir;
      data_path = Filename.concat dir data_file;
      index_path = Filename.concat dir index_file;
      lock_fd;
      rev_entries = [];
      count = 0;
      last_id = 0;
      data_length = 0;
      indexed_count = 0;
    }
  in
  with_lock t (fun () ->
      match read_index t with
      | Some (len, entries) when len <= data_size t ->
        t.rev_entries <- List.rev entries;
        t.count <- List.length entries;
        t.last_id <- (match t.rev_entries with [] -> 0 | e :: _ -> e.id);
        t.data_length <- len;
        t.indexed_count <- t.count;
        (* catch up on the unindexed tail appended since the last index
           write (possibly by another process) *)
        resync t
      | Some _ (* index ahead of the data: the file shrank *) | None -> rebuild t);
  t

(* ---------- append / load / select ---------- *)

let timestamp () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

(* stamp [stored_at] into the report's meta before writing, so a later
   index rebuild recovers the timestamp from the data file alone *)
let stamp_stored_at report stamp =
  let set_meta fields =
    let meta =
      match List.assoc_opt "meta" fields with
      | Some (Json.Obj kvs) ->
        Json.Obj (List.sort compare (("stored_at", Json.String stamp) :: List.remove_assoc "stored_at" kvs))
      | _ -> Json.Obj [ ("stored_at", Json.String stamp) ]
    in
    List.map (fun (k, v) -> if k = "meta" then (k, meta) else (k, v)) fields
    |> fun fs -> if List.mem_assoc "meta" fs then fs else ("meta", meta) :: fs
  in
  match report with Json.Obj fields -> Json.Obj (set_meta fields) | other -> other

let append t report =
  let report = stamp_stored_at report (timestamp ()) in
  let line = Json.to_string report in
  with_lock t (fun () ->
      (* another process may have appended since we last looked: adopt
         its runs first so our id and offset are correct *)
      resync t;
      let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 t.data_path in
      let offset =
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            let offset = out_channel_length oc in
            output_string oc line;
            output_char oc '\n';
            offset)
      in
      let entry = entry_of_report ~id:(t.last_id + 1) ~offset ~length:(String.length line) report in
      push_entry t entry;
      t.data_length <- offset + String.length line + 1;
      Registry.incr obs_appends;
      if index_due t then write_index t;
      entry)

(* Persist the index now (daemon shutdown, end of a batch) instead of
   waiting for the doubling schedule; the next open then catches up on
   nothing. *)
let flush t =
  with_lock t (fun () ->
      resync t;
      if t.indexed_count < t.count then write_index t)

let find t id = List.find_opt (fun e -> e.id = id) t.rev_entries

let load t id =
  match find t id with
  | None -> Error (Printf.sprintf "store: no run with id %d" id)
  | Some e -> (
    let line =
      with_read_lock t (fun () ->
          let ic = open_in_bin t.data_path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () ->
              seek_in ic e.offset;
              really_input_string ic e.length))
    in
    match Json.of_string line with
    | Ok report -> Ok (e, report)
    | Error msg -> Error (Printf.sprintf "store: run %d is unreadable (%s)" id msg))

(* the last [last] stored runs matching the filters, oldest first *)
let select ?model ?engine ?last t =
  let matches e =
    (match model with None -> true | Some m -> e.model = m)
    && match engine with None -> true | Some eng -> e.engine = eng
  in
  match last with
  | None -> List.filter matches (entries t)
  | Some n when n <= 0 -> []
  | Some n ->
    (* newest-first representation: take the window before reversing *)
    let rec take k = function
      | e :: rest when k > 0 ->
        if matches e then e :: take (k - 1) rest else take k rest
      | _ -> []
    in
    List.rev (take n t.rev_entries)
