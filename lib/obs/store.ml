(* Append-only on-disk run-report store: one directory holding
   [runs.jsonl] (one compact report per line, append-only) plus
   [index.json], a derived meta index (id, byte range, model, engine,
   verdict, stored_at per run) that makes [cbq_mc report list/trend]
   cheap — listing never parses report bodies.

   The data file is the source of truth. The index records the data
   length it was built against; on open, a stale or missing index is
   rebuilt by scanning the JSONL. A torn tail (the process died
   mid-append, or the file was truncated) is repaired during the
   rebuild: the file is cut back to the last line that parses, and
   everything before it is re-indexed. Index writes are atomic
   (tmp + rename), so a crash never leaves a half-written index. *)

type entry = {
  id : int; (* 1-based position in the data file *)
  offset : int;
  length : int; (* line length, newline excluded *)
  stored_at : string;
  model : string;
  engine : string;
  verdict : string;
}

type t = {
  dir : string;
  data_path : string;
  index_path : string;
  mutable entries : entry list; (* oldest first *)
  mutable data_length : int;
}

let index_version = 1

let data_file = "runs.jsonl"
let index_file = "index.json"

let dir t = t.dir
let entries t = t.entries

let meta_string report key =
  match Option.bind (Json.member "meta" report) (Json.member key) with
  | Some (Json.String s) -> s
  | _ -> ""

let entry_of_report ~id ~offset ~length report =
  {
    id;
    offset;
    length;
    stored_at = meta_string report "stored_at";
    model = meta_string report "model";
    engine = meta_string report "engine";
    verdict = meta_string report "verdict";
  }

(* ---------- index (de)serialization ---------- *)

let entry_json e =
  Json.Obj
    [
      ("id", Json.Int e.id);
      ("offset", Json.Int e.offset);
      ("length", Json.Int e.length);
      ("stored_at", Json.String e.stored_at);
      ("model", Json.String e.model);
      ("engine", Json.String e.engine);
      ("verdict", Json.String e.verdict);
    ]

let index_json t =
  Json.Obj
    [
      ("store_version", Json.Int index_version);
      ("data_length", Json.Int t.data_length);
      ("entries", Json.List (List.map entry_json t.entries));
    ]

let write_index t =
  let tmp = t.index_path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (index_json t)));
  Sys.rename tmp t.index_path

let entry_of_json j =
  let int key = match Json.member key j with Some (Json.Int i) -> Some i | _ -> None in
  let str key = match Json.member key j with Some (Json.String s) -> s | _ -> "" in
  match (int "id", int "offset", int "length") with
  | Some id, Some offset, Some length ->
    Some
      {
        id;
        offset;
        length;
        stored_at = str "stored_at";
        model = str "model";
        engine = str "engine";
        verdict = str "verdict";
      }
  | _ -> None

let read_index t =
  if not (Sys.file_exists t.index_path) then None
  else
    match Json.of_file t.index_path with
    | Error _ -> None
    | Ok j -> (
      match (Json.member "store_version" j, Json.member "data_length" j, Json.member "entries" j)
      with
      | Some (Json.Int v), Some (Json.Int len), Some (Json.List es) when v = index_version -> (
        let entries = List.map entry_of_json es in
        if List.exists Option.is_none entries then None
        else
          match List.filter_map (fun e -> e) entries with
          | es -> Some (len, es))
      | _ -> None)

(* ---------- rebuild from the data file ---------- *)

let data_size t = if Sys.file_exists t.data_path then (Unix.stat t.data_path).Unix.st_size else 0

(* Scan the JSONL, indexing every line that parses. Stops at the first
   line that does not parse or is not newline-terminated (a torn
   append), truncates the file back to that point, and returns the
   entries before it. *)
let rebuild t =
  let entries = ref [] in
  let good_end = ref 0 in
  if Sys.file_exists t.data_path then begin
    let ic = open_in_bin t.data_path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let file_len = in_channel_length ic in
        let id = ref 1 in
        let stop = ref false in
        while not !stop do
          let offset = pos_in ic in
          match input_line ic with
          | exception End_of_file -> stop := true
          | line ->
            let terminated = pos_in ic = offset + String.length line + 1 in
            let complete = terminated || pos_in ic < file_len in
            if not complete then stop := true (* torn tail: no final newline *)
            else (
              match Json.of_string line with
              | Error _ -> stop := true
              | Ok report ->
                entries :=
                  entry_of_report ~id:!id ~offset ~length:(String.length line) report
                  :: !entries;
                incr id;
                good_end := offset + String.length line + 1)
        done)
  end;
  if data_size t > !good_end then Unix.truncate t.data_path !good_end;
  t.entries <- List.rev !entries;
  t.data_length <- !good_end;
  write_index t

let open_ dir =
  Util.Fs.mkdirs dir;
  let t =
    {
      dir;
      data_path = Filename.concat dir data_file;
      index_path = Filename.concat dir index_file;
      entries = [];
      data_length = 0;
    }
  in
  (match read_index t with
  | Some (len, entries) when len = data_size t ->
    t.entries <- entries;
    t.data_length <- len
  | Some _ | None -> rebuild t);
  t

(* ---------- append / load / select ---------- *)

let timestamp () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

(* stamp [stored_at] into the report's meta before writing, so a later
   index rebuild recovers the timestamp from the data file alone *)
let stamp_stored_at report stamp =
  let set_meta fields =
    let meta =
      match List.assoc_opt "meta" fields with
      | Some (Json.Obj kvs) ->
        Json.Obj (List.sort compare (("stored_at", Json.String stamp) :: List.remove_assoc "stored_at" kvs))
      | _ -> Json.Obj [ ("stored_at", Json.String stamp) ]
    in
    List.map (fun (k, v) -> if k = "meta" then (k, meta) else (k, v)) fields
    |> fun fs -> if List.mem_assoc "meta" fs then fs else ("meta", meta) :: fs
  in
  match report with Json.Obj fields -> Json.Obj (set_meta fields) | other -> other

let append t report =
  let report = stamp_stored_at report (timestamp ()) in
  let line = Json.to_string report in
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 t.data_path in
  let offset =
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let offset = out_channel_length oc in
        output_string oc line;
        output_char oc '\n';
        offset)
  in
  let id = (match t.entries with [] -> 0 | es -> (List.nth es (List.length es - 1)).id) + 1 in
  let entry = entry_of_report ~id ~offset ~length:(String.length line) report in
  t.entries <- t.entries @ [ entry ];
  t.data_length <- offset + String.length line + 1;
  write_index t;
  entry

let find t id = List.find_opt (fun e -> e.id = id) t.entries

let load t id =
  match find t id with
  | None -> Error (Printf.sprintf "store: no run with id %d" id)
  | Some e -> (
    let ic = open_in_bin t.data_path in
    let line =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          seek_in ic e.offset;
          really_input_string ic e.length)
    in
    match Json.of_string line with
    | Ok report -> Ok (e, report)
    | Error msg -> Error (Printf.sprintf "store: run %d is unreadable (%s)" id msg))

(* the last [last] stored runs matching the filters, oldest first *)
let select ?model ?engine ?last t =
  let matches e =
    (match model with None -> true | Some m -> e.model = m)
    && match engine with None -> true | Some eng -> e.engine = eng
  in
  let hits = List.filter matches t.entries in
  match last with
  | None -> hits
  | Some n when n <= 0 -> []
  | Some n ->
    let len = List.length hits in
    if len <= n then hits else List.filteri (fun i _ -> i >= len - n) hits
