(* Observability bridge for [Util.Limits]: the governor lives in [util]
   (below this library), so it cannot emit metrics itself. [arm]
   installs its notify hook to count fatal trips per resource and drop
   a [limits.exhausted] instant on the trace timeline. The traversal
   engines arm every governor they receive, so degradations are visible
   in run reports and Perfetto regardless of who constructed it. *)

let obs_exhausted = Registry.counter "limits.exhausted"
let obs_deadline = Registry.counter "limits.exhausted.deadline"
let obs_conflicts = Registry.counter "limits.exhausted.conflicts"
let obs_aig = Registry.counter "limits.exhausted.aig_nodes"
let obs_bdd = Registry.counter "limits.exhausted.bdd_nodes"
let obs_cancelled = Registry.counter "limits.exhausted.cancelled"

let resource_counter = function
  | Util.Limits.Deadline -> obs_deadline
  | Util.Limits.Conflicts -> obs_conflicts
  | Util.Limits.Aig_nodes -> obs_aig
  | Util.Limits.Bdd_nodes -> obs_bdd
  | Util.Limits.Cancelled -> obs_cancelled

(* stable resource encoding for the trace-instant argument *)
let resource_index = function
  | Util.Limits.Deadline -> 0
  | Util.Limits.Conflicts -> 1
  | Util.Limits.Aig_nodes -> 2
  | Util.Limits.Bdd_nodes -> 3
  | Util.Limits.Cancelled -> 4

let arm l =
  Util.Limits.set_notify l (fun r ->
      Registry.incr obs_exhausted;
      Registry.incr (resource_counter r);
      Trace_events.instant_args "limits.exhausted" "resource" (resource_index r));
  l
