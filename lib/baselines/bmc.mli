(** Bounded model checking (Biere et al., DAC'99), as a falsification
    baseline and as the downstream SAT engine that the paper's partial
    quantification feeds (experiment T5).

    The model is unrolled functionally ({!Cbq.Unroll}), so each depth is a
    single satisfiability query over the frame-input variables; the solver
    and its learned clauses persist across depths. *)

type result = {
  verdict : Verdict.t; (* [Proved] never occurs: BMC only refutes *)
  trace : Cbq.Trace.t option;
  depth_reached : int;
  inputs_eliminated : int; (* by CBQ preprocessing, when enabled *)
  solver : Sat.Solver.stats;
  seconds : float;
}

val pp_result : Format.formatter -> result -> unit

(** [run ?max_depth ?conflict_limit ?preprocess m] searches for a
    counterexample of length [0..max_depth]. [Undecided] reports the bound
    (or the conflict budget) that stopped the search.

    [~preprocess:true] enables the paper's §4 combination: before each
    depth's SAT call, circuit-based quantification (with a strict growth
    budget) structurally eliminates frame-input variables from the
    unrolled bad-state cone, so the solver faces fewer decision variables.
    Counterexample traces are then reconstructed from the un-preprocessed
    cone, so they stay complete.

    [limits] is a run-wide resource governor; on a trip the search stops
    with [Undecided] naming the resource and the depth reached. *)
val run :
  ?max_depth:int ->
  ?conflict_limit:int ->
  ?preprocess:bool ->
  ?limits:Util.Limits.t ->
  Netlist.Model.t ->
  result

(** [run_with_frontier m ~frontier ~max_depth] — BMC towards an arbitrary
    state set instead of [¬P]: find a path from the initial states into
    [frontier] (a literal over state variables). Used by the hybrid engine
    and by tests that cross-validate CBQ frontiers. *)
val run_with_frontier :
  ?conflict_limit:int ->
  ?limits:Util.Limits.t ->
  Netlist.Model.t ->
  frontier:Aig.lit ->
  max_depth:int ->
  result
