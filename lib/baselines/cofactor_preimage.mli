(** All-solution SAT pre-image with circuit cofactoring (Ganai, Gupta &
    Ashar, ICCAD'04) — the SAT-based unbounded engine the paper proposes to
    combine with (§4).

    The pre-image [∃x. B(δ(s,x))] is enumerated: each satisfying
    assignment of the in-lined formula is {e generalized} by cofactoring
    the circuit with respect to the satisfying {e input} assignment only,
    capturing every state compatible with that input vector at once; the
    captured set is blocked and enumeration continues until UNSAT. *)

type preimage_stats = {
  enumerations : int; (* SAT solutions needed *)
  result_size : int; (* AND nodes of the accumulated pre-image *)
}

(** [preimage m checker ~frontier ~max_enumerations ~quantify] computes
    the pre-image of a state set. [quantify] lists the variables to
    eliminate by enumeration (the model inputs, by default the whole
    input-support). Returns [None] when the enumeration budget is
    exhausted. *)
val preimage :
  Netlist.Model.t ->
  Cnf.Checker.t ->
  frontier:Aig.lit ->
  quantify:Aig.var list ->
  max_enumerations:int ->
  (Aig.lit * preimage_stats) option

type iteration = { index : int; frontier_size : int; enumerations : int }

type result = {
  verdict : Verdict.t;
  iterations : iteration list;
  total_enumerations : int;
  seconds : float;
}

val pp_result : Format.formatter -> result -> unit

(** Backward reachability where every pre-image is computed by
    enumeration. [limits] is a run-wide governor: polled at every frame,
    bound to the SAT checker, and named in the [Undecided] message when
    it trips. *)
val run :
  ?max_iterations:int ->
  ?max_enumerations:int ->
  ?limits:Util.Limits.t ->
  Netlist.Model.t ->
  result
