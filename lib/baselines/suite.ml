type config = {
  bmc_depth : int;
  induction_k : int;
  make_trace : bool;
  quantify_backend : Cbq.Quantify.backend;
}

let default_config =
  {
    bmc_depth = 30;
    induction_k = 25;
    make_trace = true;
    quantify_backend = Cbq.Quantify.default.Cbq.Quantify.backend;
  }

type engine = {
  name : string;
  run : limits:Util.Limits.t -> Netlist.Model.t -> Verdict.t * Cbq.Trace.t option;
}

let of_cbq = function
  | Cbq.Reachability.Proved -> Verdict.Proved
  | Cbq.Reachability.Falsified { depth; _ } -> Verdict.Falsified depth
  | Cbq.Reachability.Out_of_budget { reason; _ } -> Verdict.Undecided reason

let trace_of_cbq = function
  | Cbq.Reachability.Falsified { trace; _ } -> trace
  | Cbq.Reachability.Proved | Cbq.Reachability.Out_of_budget _ -> None

let engines ?(config = default_config) () =
  let cbq_config =
    {
      Cbq.Reachability.default with
      make_trace = config.make_trace;
      quant = { Cbq.Quantify.default with backend = config.quantify_backend };
    }
  in
  [
    {
      name = "cbq-bwd";
      run =
        (fun ~limits m ->
          let r = Cbq.Reachability.run ~config:cbq_config ~limits m in
          (of_cbq r.Cbq.Reachability.verdict, trace_of_cbq r.Cbq.Reachability.verdict));
    };
    {
      name = "cbq-fwd";
      run =
        (fun ~limits m ->
          let r = Cbq.Forward.run ~config:cbq_config ~limits m in
          (of_cbq r.Cbq.Reachability.verdict, trace_of_cbq r.Cbq.Reachability.verdict));
    };
    {
      name = "bdd-bwd";
      run = (fun ~limits m -> ((Bdd_mc.backward ~limits m).Bdd_mc.verdict, None));
    };
    {
      name = "bdd-fwd";
      run = (fun ~limits m -> ((Bdd_mc.forward ~limits m).Bdd_mc.verdict, None));
    };
    {
      name = "bmc";
      run =
        (fun ~limits m ->
          let r = Bmc.run ~max_depth:config.bmc_depth ~limits m in
          (r.Bmc.verdict, r.Bmc.trace));
    };
    {
      name = "induction";
      run =
        (fun ~limits m ->
          let r = Induction.run ~max_k:config.induction_k ~limits m in
          (r.Induction.verdict, r.Induction.trace));
    };
    {
      name = "cofactor";
      run =
        (fun ~limits m -> ((Cofactor_preimage.run ~limits m).Cofactor_preimage.verdict, None));
    };
    { name = "hybrid"; run = (fun ~limits m -> ((Hybrid.run ~limits m).Hybrid.verdict, None)) };
  ]

let names = List.map (fun e -> e.name) (engines ())

let find ?config name = List.find_opt (fun e -> e.name = name) (engines ?config ())
