(** The traditional engine the paper positions itself against: symbolic
    reachability with canonical (BDD) state sets.

    Pre-image composes the next-state BDDs into the frontier and
    existentially quantifies the inputs; forward image uses a monolithic
    transition relation over primed variables. No dynamic variable
    reordering is performed (the variable order is the model's variable
    numbering, primed variables last), so canonicity-induced blow-up
    appears at moderate sizes — the node quota turns it into an explicit
    [Undecided "node limit"] outcome, which is precisely the behaviour the
    comparison tables need to exhibit. *)

type iteration = { index : int; frontier_nodes : int; reached_nodes : int }

type result = {
  verdict : Verdict.t;
  iterations : iteration list;
  peak_nodes : int; (* total BDD nodes allocated by the manager *)
  seconds : float;
}

val pp_result : Format.formatter -> result -> unit

(** Backward reachability from [¬P] — the same traversal as
    {!Cbq.Reachability} but with BDD state sets. [limits] is a run-wide
    governor: its BDD node pool tightens [node_limit] (blowing the pool
    is a fatal trip), its deadline is polled at every frame, and all
    nodes the manager allocates are charged back to the pool. *)
val backward :
  ?node_limit:int ->
  ?max_iterations:int ->
  ?limits:Util.Limits.t ->
  Netlist.Model.t ->
  result

(** Forward reachability from the initial states, with a monolithic
    transition relation. [limits] as in {!backward}. *)
val forward :
  ?node_limit:int ->
  ?max_iterations:int ->
  ?limits:Util.Limits.t ->
  Netlist.Model.t ->
  result
