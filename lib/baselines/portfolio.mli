(** Portfolio engine: race the whole suite, first decisive verdict wins.

    Every selected engine verifies its own thawed clone of the model
    ([Par.Clone]) under its own fresh {!Util.Limits} governor, on a
    domain pool ([Par.Race]). The first engine to return a {e decided}
    verdict — [Proved] or [Falsified] — wins the race; the losers'
    governors are cancelled and each loser returns its anytime
    [Undecided] at its next governor checkpoint. Decided verdicts agree
    with single-engine runs by construction: racing changes who answers
    first, never what an engine answers on its own clone.

    When no engine decides (all out of budget, crashed, or the model is
    beyond every engine), the portfolio verdict is [Undecided]. *)

type engine_outcome =
  | Verdict of Verdict.t  (** the engine ran to completion *)
  | Skipped  (** race decided before this engine started *)
  | Crashed of string

type result = {
  verdict : Verdict.t;
  trace : Cbq.Trace.t option;  (** the winner's counterexample, when it built one *)
  winner : string option;  (** winning engine name; [None] if nothing decided *)
  outcomes : (string * engine_outcome) list;  (** every entrant, in suite order *)
  seconds : float;  (** wall-clock for the whole race *)
}

val pp_result : Format.formatter -> result -> unit

(** [run ?config ?engines ?jobs ?make_limits m] races the named engines
    (default: the whole suite) over up to [jobs] domains (default: one
    per engine, capped by [Par.Pool.default_jobs]).

    [make_limits] builds one governor per entrant — use it to give every
    engine the same budget caps. It must return a {e fresh} governor on
    each call (never [Util.Limits.unlimited]): the racer cancels losers
    through it.

    @raise Invalid_argument on an unknown engine name or an empty
    engine list. *)
val run :
  ?config:Suite.config ->
  ?engines:string list ->
  ?jobs:int ->
  ?make_limits:(unit -> Util.Limits.t) ->
  Netlist.Model.t ->
  result
