let obs_runs = Obs.counter "portfolio.runs"
let obs_decided = Obs.counter "portfolio.decided"
let obs_undecided = Obs.counter "portfolio.undecided"

type engine_outcome = Verdict of Verdict.t | Skipped | Crashed of string

type result = {
  verdict : Verdict.t;
  trace : Cbq.Trace.t option;
  winner : string option;
  outcomes : (string * engine_outcome) list;
  seconds : float;
}

let pp_result ppf r =
  Format.fprintf ppf "@[<v>portfolio: %a" Verdict.pp r.verdict;
  (match r.winner with
  | Some w -> Format.fprintf ppf " (winner %s, %.3fs)" w r.seconds
  | None -> Format.fprintf ppf " (no winner, %.3fs)" r.seconds);
  List.iter
    (fun (name, o) ->
      match o with
      | Verdict v -> Format.fprintf ppf "@,  %-10s %a" name Verdict.pp v
      | Skipped -> Format.fprintf ppf "@,  %-10s skipped" name
      | Crashed e -> Format.fprintf ppf "@,  %-10s crashed: %s" name e)
    r.outcomes;
  Format.fprintf ppf "@]"

let decided = function Verdict.Proved | Verdict.Falsified _ -> true | Verdict.Undecided _ -> false

let run ?config ?engines ?jobs ?(make_limits = fun () -> Util.Limits.create ()) m =
  let table = Suite.engines ?config () in
  let selected =
    match engines with
    | None -> table
    | Some [] -> invalid_arg "Portfolio.run: empty engine list"
    | Some names ->
      List.map
        (fun name ->
          match List.find_opt (fun (e : Suite.engine) -> e.name = name) table with
          | Some e -> e
          | None -> invalid_arg ("Portfolio.run: unknown engine " ^ name))
        names
  in
  Obs.incr obs_runs;
  let jobs =
    match jobs with
    | Some j -> j
    | None -> min (List.length selected) (Par.Pool.default_jobs ())
  in
  (* one frozen image shared read-only; each entrant thaws its own clone
     on the domain that runs it *)
  let frozen = Par.Clone.freeze m in
  let entrants =
    List.map
      (fun (e : Suite.engine) ->
        let limits = make_limits () in
        if limits == Util.Limits.unlimited then
          invalid_arg "Portfolio.run: make_limits must return a fresh governor";
        {
          Par.Race.name = e.name;
          limits;
          run = (fun () -> e.run ~limits (Par.Clone.thaw frozen));
        })
      selected
  in
  let race = Par.Race.run ~jobs ~decisive:(fun (v, _) -> decided v) entrants in
  let outcomes =
    List.mapi
      (fun i (e : Suite.engine) ->
        ( e.name,
          match race.Par.Race.results.(i) with
          | Par.Race.Finished (v, _) -> Verdict v
          | Par.Race.Skipped -> Skipped
          | Par.Race.Crashed exn -> Crashed exn ))
      selected
  in
  let verdict, trace, winner =
    match race.Par.Race.winner with
    | Some (name, (v, trace)) ->
      Obs.incr obs_decided;
      (v, trace, Some name)
    | None ->
      Obs.incr obs_undecided;
      (Verdict.Undecided "portfolio: no engine decided within budget", None, None)
  in
  { verdict; trace; winner; outcomes; seconds = race.Par.Race.seconds }
