(** k-induction (Sheeran, Singh & Stålmarck, FMCAD'00) — the unbounded
    SAT-based baseline of paper §4.

    Round [k] checks the {e base} case (no counterexample of length [k],
    shared with the BMC unrolling) and the {e step} case: a loop-free path
    of [k+1] states satisfying [P] cannot be extended to one violating it.
    Simple-path (pairwise-distinct states) constraints make the method
    complete on finite models. *)

type result = {
  verdict : Verdict.t;
  k_used : int; (* induction depth at the final round *)
  trace : Cbq.Trace.t option; (* on falsification *)
  solver : Sat.Solver.stats;
  seconds : float;
}

val pp_result : Format.formatter -> result -> unit

(** [run ?max_k ?simple_path ?limits m]. [Undecided] when [max_k] rounds
    pass without convergence (only possible with [simple_path:false]) or
    when the [limits] governor trips mid-run — the message then names
    the resource and the round reached. *)
val run :
  ?max_k:int -> ?simple_path:bool -> ?limits:Util.Limits.t -> Netlist.Model.t -> result
