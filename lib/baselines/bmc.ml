type result = {
  verdict : Verdict.t;
  trace : Cbq.Trace.t option;
  depth_reached : int;
  inputs_eliminated : int;
  solver : Sat.Solver.stats;
  seconds : float;
}

let pp_result ppf r =
  Format.fprintf ppf "%a depth=%d decisions=%d conflicts=%d%s %.3fs" Verdict.pp r.verdict
    r.depth_reached r.solver.Sat.Solver.decisions r.solver.Sat.Solver.conflicts
    (if r.inputs_eliminated > 0 then Printf.sprintf " cbq-eliminated=%d" r.inputs_eliminated
     else "")
    r.seconds

(* strict budget: only structurally cheap eliminations are worth doing in
   front of a SAT call *)
let preprocess_config =
  { Cbq.Quantify.default with growth_limit = 1.0; growth_slack = 8 }

let search ?(conflict_limit = max_int) ?(preprocess = false)
    ?(limits = Util.Limits.unlimited) model ~target_at ~max_depth =
  let watch = Util.Stopwatch.start () in
  let limits = Obs.Limits.arm limits in
  let aig = Netlist.Model.aig model in
  let checker = Cnf.Checker.create aig in
  Cnf.Checker.set_limits checker limits;
  let prng = Util.Prng.create 67 in
  let limit = if conflict_limit = max_int then None else Some conflict_limit in
  let unroll = Cbq.Unroll.create model in
  let eliminated = ref 0 in
  let finish verdict trace depth =
    {
      verdict;
      trace;
      depth_reached = depth;
      inputs_eliminated = !eliminated;
      solver = Cnf.Checker.solver_stats checker;
      seconds = Util.Stopwatch.elapsed watch;
    }
  in
  let query k =
    let target = target_at unroll k in
    let target_for_sat =
      if not preprocess then target
      else begin
        let vars = Aig.support aig target in
        let q = Cbq.Quantify.all ~config:preprocess_config aig checker ~prng target ~vars in
        eliminated := !eliminated + List.length q.Cbq.Quantify.eliminated;
        q.Cbq.Quantify.lit
      end
    in
    Cnf.Checker.set_conflict_limit checker limit;
    match Cnf.Checker.satisfiable checker [ target_for_sat ] with
    | Cnf.Checker.Yes when preprocess ->
      (* re-solve the full cone so the model covers every frame input the
         quantification removed; the learned clauses make this cheap *)
      Cnf.Checker.satisfiable checker [ target ]
    | answer -> answer
  in
  let rec go k =
    match Util.Limits.check limits with
    | Some r ->
      finish
        (Verdict.Undecided (Printf.sprintf "%s (depth %d)" (Util.Limits.resource_name r) k))
        None k
    | None ->
      if k > max_depth then
        finish (Verdict.Undecided (Printf.sprintf "bound %d" max_depth)) None max_depth
      else begin
        match query k with
        | Cnf.Checker.Yes ->
          let trace =
            Cbq.Unroll.trace_from_model unroll ~depth:k ~value:(Cnf.Checker.model_var checker)
          in
          finish (Verdict.Falsified k) (Some trace) k
        | Cnf.Checker.No -> go (k + 1)
        | Cnf.Checker.Maybe ->
          let why =
            match Util.Limits.exhausted limits with
            | Some r -> Printf.sprintf "%s (depth %d)" (Util.Limits.resource_name r) k
            | None -> "conflict budget"
          in
          finish (Verdict.Undecided why) None k
      end
  in
  go 0

let run ?(max_depth = 100) ?conflict_limit ?preprocess ?limits model =
  search ?conflict_limit ?preprocess ?limits model ~target_at:Cbq.Unroll.bad_at ~max_depth

let run_with_frontier ?conflict_limit ?limits model ~frontier ~max_depth =
  let aig = Netlist.Model.aig model in
  let target_at unroll k =
    let subst v =
      if List.mem v (Netlist.Model.state_vars model) then
        Some (Cbq.Unroll.state_lit unroll ~frame:k v)
      else None
    in
    Aig.compose aig frontier ~subst
  in
  search model ~target_at ~max_depth ?conflict_limit ?limits
