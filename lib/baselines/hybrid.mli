(** The combination the paper advocates (§4): circuit-based quantification
    as a {e pre-processing} step in front of an all-solution SAT pre-image.

    Each pre-image first runs partial circuit-based quantification with an
    aggressive growth budget — cheap input variables are eliminated
    structurally — and hands only the {e residual} (aborted) variables to
    the enumeration engine, which therefore explores a decision space with
    far fewer input variables. *)

type iteration = {
  index : int;
  eliminated_by_cbq : int; (* inputs removed by circuit quantification *)
  enumerated : int; (* residual inputs left to the SAT engine *)
  enumerations : int; (* SAT solutions the residual cost *)
  frontier_size : int;
}

type result = {
  verdict : Verdict.t;
  iterations : iteration list;
  total_enumerations : int;
  seconds : float;
}

val pp_result : Format.formatter -> result -> unit

(** [run ?quant_config ?max_iterations ?max_enumerations ?limits m]. The
    default [quant_config] uses a tight growth budget (abort early, let
    SAT finish), which is the paper's recommended division of labour.
    [limits] is a run-wide governor as in {!Cofactor_preimage.run}. *)
val run :
  ?quant_config:Cbq.Quantify.config ->
  ?max_iterations:int ->
  ?max_enumerations:int ->
  ?limits:Util.Limits.t ->
  Netlist.Model.t ->
  result
