type result = {
  verdict : Verdict.t;
  k_used : int;
  trace : Cbq.Trace.t option;
  solver : Sat.Solver.stats;
  seconds : float;
}

let pp_result ppf r =
  Format.fprintf ppf "%a k=%d decisions=%d conflicts=%d %.3fs" Verdict.pp r.verdict r.k_used
    r.solver.Sat.Solver.decisions r.solver.Sat.Solver.conflicts r.seconds

(* Symbolic unrolling: frame 0 is a vector of fresh variables (an
   arbitrary state), so satisfiability over it quantifies the start state
   of the induction step. *)
module Symbolic = struct
  type t = {
    model : Netlist.Model.t;
    aig : Aig.t;
    states : (int * Aig.var, Aig.lit) Hashtbl.t;
    inputs : (int * Aig.var, Aig.lit) Hashtbl.t;
    mutable ready : int;
  }

  let create model =
    let aig = Netlist.Model.aig model in
    let t = { model; aig; states = Hashtbl.create 64; inputs = Hashtbl.create 64; ready = 0 } in
    List.iter
      (fun l ->
        Hashtbl.replace t.states (0, l.Netlist.Model.state_var)
          (Aig.var aig (Aig.fresh_var aig)))
      model.Netlist.Model.latches;
    t

  let input_lit t ~frame v =
    match Hashtbl.find_opt t.inputs (frame, v) with
    | Some l -> l
    | None ->
      let l = Aig.var t.aig (Aig.fresh_var t.aig) in
      Hashtbl.replace t.inputs (frame, v) l;
      l

  let subst t k v =
    match Hashtbl.find_opt t.states (k, v) with
    | Some l -> Some l
    | None ->
      if List.mem v (Netlist.Model.input_vars t.model) then Some (input_lit t ~frame:k v)
      else None

  let rec ensure t k =
    if k > t.ready then begin
      ensure t (k - 1);
      List.iter
        (fun l ->
          let lit = Aig.compose t.aig l.Netlist.Model.next ~subst:(subst t (k - 1)) in
          Hashtbl.replace t.states (k, l.Netlist.Model.state_var) lit)
        t.model.Netlist.Model.latches;
      t.ready <- k
    end

  let property_at t k =
    ensure t k;
    Aig.compose t.aig t.model.Netlist.Model.property ~subst:(subst t k)

  let state_lit t ~frame v =
    ensure t frame;
    Hashtbl.find t.states (frame, v)

  (* "states at frames i and j differ" *)
  let distinct t i j =
    let bits =
      List.map
        (fun v -> Aig.xor_ t.aig (state_lit t ~frame:i v) (state_lit t ~frame:j v))
        (Netlist.Model.state_vars t.model)
    in
    Aig.or_list t.aig bits
end

let run ?(max_k = 50) ?(simple_path = true) ?(limits = Util.Limits.unlimited) model =
  let watch = Util.Stopwatch.start () in
  let limits = Obs.Limits.arm limits in
  let aig = Netlist.Model.aig model in
  let checker = Cnf.Checker.create aig in
  Cnf.Checker.set_limits checker limits;
  let base_unroll = Cbq.Unroll.create model in
  let sym = Symbolic.create model in
  let finish verdict k trace =
    {
      verdict;
      k_used = k;
      trace;
      solver = Cnf.Checker.solver_stats checker;
      seconds = Util.Stopwatch.elapsed watch;
    }
  in
  (* a budgeted Maybe: name the tripped governor resource when there is
     one, the per-query conflict budget otherwise *)
  let undecided_why k =
    match Util.Limits.exhausted limits with
    | Some r -> Printf.sprintf "%s (k=%d)" (Util.Limits.resource_name r) k
    | None -> "conflict budget"
  in
  let rec round k =
    match Util.Limits.check limits with
    | Some r ->
      finish
        (Verdict.Undecided (Printf.sprintf "%s (k=%d)" (Util.Limits.resource_name r) k))
        k None
    | None ->
      if k > max_k then
        finish (Verdict.Undecided (Printf.sprintf "no convergence by k=%d" max_k)) max_k None
      else begin
        (* base: counterexample of exactly length k? *)
        match Cnf.Checker.satisfiable checker [ Cbq.Unroll.bad_at base_unroll k ] with
        | Cnf.Checker.Yes ->
          let trace =
            Cbq.Unroll.trace_from_model base_unroll ~depth:k
              ~value:(Cnf.Checker.model_var checker)
          in
          finish (Verdict.Falsified k) k (Some trace)
        | Cnf.Checker.Maybe -> finish (Verdict.Undecided (undecided_why k)) k None
        | Cnf.Checker.No ->
          (* step: P on frames 0..k, loop-free, yet ¬P on frame k+1 *)
          let assumptions =
            List.init (k + 1) (fun i -> Symbolic.property_at sym i)
            @ [ Aig.not_ (Symbolic.property_at sym (k + 1)) ]
            @ (if simple_path then
                 (* all k+2 path states pairwise distinct: makes the method
                    complete (vacuous step once k exceeds the state count) *)
                 List.concat
                   (List.init (k + 2) (fun i ->
                        List.init (k + 2 - i - 1) (fun d -> Symbolic.distinct sym i (i + d + 1))))
               else [])
          in
          (match Cnf.Checker.satisfiable checker assumptions with
          | Cnf.Checker.No -> finish Verdict.Proved k None
          | Cnf.Checker.Yes -> round (k + 1)
          | Cnf.Checker.Maybe -> finish (Verdict.Undecided (undecided_why k)) k None)
      end
  in
  round 0
