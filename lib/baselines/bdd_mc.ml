type iteration = { index : int; frontier_nodes : int; reached_nodes : int }

type result = {
  verdict : Verdict.t;
  iterations : iteration list;
  peak_nodes : int;
  seconds : float;
}

let pp_result ppf r =
  Format.fprintf ppf "%a iterations=%d peak-bdd-nodes=%d %.3fs" Verdict.pp r.verdict
    (List.length r.iterations) r.peak_nodes r.seconds

(* Translate AIG cones into the BDD manager, one shared memo per engine
   run; BDD variable indices coincide with AIG variable indices. *)
let make_translator man aig =
  let memo : (int, Bdd.node) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.replace memo 0 Bdd.zero;
  fun lit ->
    let nodes = Aig.cone aig [ lit ] in
    List.iter
      (fun n ->
        if not (Hashtbl.mem memo n) then begin
          let f0, f1 = Aig.fanins aig n in
          let value l =
            let m = Aig.node_of_lit l in
            let b =
              match Hashtbl.find_opt memo m with
              | Some b -> b
              | None -> (
                match Aig.var_of_lit aig (Aig.lit_of_node m) with
                | Some v ->
                  let b = Bdd.var_node man v in
                  Hashtbl.replace memo m b;
                  b
                | None -> assert false)
            in
            if Aig.is_complemented l then Bdd.not_ man b else b
          in
          Hashtbl.replace memo n (Bdd.and_ man (value f0) (value f1))
        end)
      nodes;
    let b =
      match Hashtbl.find_opt memo (Aig.node_of_lit lit) with
      | Some b -> b
      | None -> (
        match Aig.var_of_lit aig lit with
        | Some v ->
          let b = Bdd.var_node man v in
          Hashtbl.replace memo (Aig.node_of_lit lit) b;
          b
        | None -> assert false)
    in
    if Aig.is_complemented lit then Bdd.not_ man b else b

let run_engine ~limits ~node_limit ~body =
  let watch = Util.Stopwatch.start () in
  let limits = Obs.Limits.arm limits in
  let man = Bdd.create () in
  let iterations = ref [] in
  (* the governor's BDD node pool tightens the engine's own quota; when
     the pool is the binding constraint, blowing it is a fatal trip *)
  let pool_bound, node_limit =
    match Util.Limits.bdd_budget limits with
    | Some pool when pool < node_limit -> (true, max 1 pool)
    | Some _ | None -> (false, node_limit)
  in
  (* Polling inside BDD construction keeps a blowing-up build
     interruptible: without it a cancelled or deadline-tripped engine only
     notices between reachability iterations, i.e. after it has already
     ground to its node quota. *)
  let poll () = if Util.Limits.check limits <> None then raise Bdd.Node_limit in
  let verdict =
    match Bdd.with_limit man ~poll ~max_nodes:node_limit (fun () -> body limits man iterations) with
    | Ok v -> v
    | Error `Node_limit -> (
      match Util.Limits.exhausted limits with
      | Some r -> Verdict.Undecided (Util.Limits.resource_name r)
      | None ->
        if pool_bound then begin
          Util.Limits.trip limits Util.Limits.Bdd_nodes;
          Verdict.Undecided (Util.Limits.resource_name Util.Limits.Bdd_nodes)
        end
        else Verdict.Undecided "node limit")
  in
  Util.Limits.charge_bdd_nodes limits (Bdd.num_nodes man);
  {
    verdict;
    iterations = List.rev !iterations;
    peak_nodes = Bdd.num_nodes man;
    seconds = Util.Stopwatch.elapsed watch;
  }

let backward ?(node_limit = 1_000_000) ?(max_iterations = 200)
    ?(limits = Util.Limits.unlimited) model =
  let aig = Netlist.Model.aig model in
  let input_vars = Netlist.Model.input_vars model in
  let is_input v = List.mem v input_vars in
  run_engine ~limits ~node_limit ~body:(fun limits man iterations ->
      let of_lit = make_translator man aig in
      let next_bdd =
        List.map
          (fun l -> (l.Netlist.Model.state_var, of_lit l.Netlist.Model.next))
          model.Netlist.Model.latches
      in
      let subst v = List.assoc_opt v next_bdd in
      let init = of_lit (Netlist.Model.init_lit model) in
      let bad = Bdd.exists man is_input (of_lit (Aig.not_ model.Netlist.Model.property)) in
      if Bdd.and_ man init bad <> Bdd.zero then Verdict.Falsified 0
      else begin
        let reached = ref bad in
        let frontier = ref bad in
        let rec loop k =
          match Util.Limits.check limits with
          | Some r ->
            Verdict.Undecided
              (Printf.sprintf "%s (frame %d)" (Util.Limits.resource_name r) (k - 1))
          | None ->
          if k > max_iterations then Verdict.Undecided "iteration limit"
          else begin
            let pre = Bdd.exists man is_input (Bdd.compose man !frontier ~subst) in
            let novel = Bdd.and_ man pre (Bdd.not_ man !reached) in
            iterations :=
              { index = k; frontier_nodes = Bdd.size man novel; reached_nodes = Bdd.size man !reached }
              :: !iterations;
            if Bdd.and_ man pre init <> Bdd.zero then Verdict.Falsified k
            else if novel = Bdd.zero then Verdict.Proved
            else begin
              reached := Bdd.or_ man !reached novel;
              frontier := novel;
              loop (k + 1)
            end
          end
        in
        loop 1
      end)

let forward ?(node_limit = 1_000_000) ?(max_iterations = 200)
    ?(limits = Util.Limits.unlimited) model =
  let aig = Netlist.Model.aig model in
  let input_vars = Netlist.Model.input_vars model in
  let state_vars = Netlist.Model.state_vars model in
  (* primed variables live above every model variable *)
  let base = Aig.num_vars aig + 1 in
  let primed = List.mapi (fun i v -> (v, base + i)) state_vars in
  run_engine ~limits ~node_limit ~body:(fun limits man iterations ->
      let of_lit = make_translator man aig in
      let relation =
        List.fold_left
          (fun acc l ->
            let p = List.assoc l.Netlist.Model.state_var primed in
            let eq = Bdd.iff_ man (Bdd.var_node man p) (of_lit l.Netlist.Model.next) in
            Bdd.and_ man acc eq)
          Bdd.one model.Netlist.Model.latches
      in
      let is_unprimed v = v < base in
      let unprime = List.map (fun (v, p) -> (p, Bdd.var_node man v)) primed in
      let image r =
        let product = Bdd.and_ man relation r in
        let primed_only = Bdd.exists man is_unprimed product in
        Bdd.compose man primed_only ~subst:(fun v -> List.assoc_opt v unprime)
      in
      let init = of_lit (Netlist.Model.init_lit model) in
      let bad =
        Bdd.exists man (fun v -> List.mem v input_vars)
          (of_lit (Aig.not_ model.Netlist.Model.property))
      in
      if Bdd.and_ man init bad <> Bdd.zero then Verdict.Falsified 0
      else begin
        let reached = ref init in
        let frontier = ref init in
        let rec loop k =
          match Util.Limits.check limits with
          | Some r ->
            Verdict.Undecided
              (Printf.sprintf "%s (frame %d)" (Util.Limits.resource_name r) (k - 1))
          | None ->
          if k > max_iterations then Verdict.Undecided "iteration limit"
          else begin
            let img = image !frontier in
            let novel = Bdd.and_ man img (Bdd.not_ man !reached) in
            iterations :=
              { index = k; frontier_nodes = Bdd.size man novel; reached_nodes = Bdd.size man !reached }
              :: !iterations;
            if Bdd.and_ man img bad <> Bdd.zero then Verdict.Falsified k
            else if novel = Bdd.zero then Verdict.Proved
            else begin
              reached := Bdd.or_ man !reached novel;
              frontier := novel;
              loop (k + 1)
            end
          end
        in
        loop 1
      end)
