type preimage_stats = { enumerations : int; result_size : int }

(* Enumerate ∃(quantify). f by repeated SAT: cofactor f with the
   satisfying assignment of the quantified variables (circuit
   cofactoring), accumulate, block, repeat. *)
let enumerate aig checker f ~quantify ~max_enumerations =
  Cnf.Checker.set_conflict_limit checker None;
  let rec go acc count =
    if count >= max_enumerations then None
    else begin
      match Cnf.Checker.satisfiable checker [ f; Aig.not_ acc ] with
      | Cnf.Checker.No -> Some (acc, count)
      | Cnf.Checker.Maybe -> None
      | Cnf.Checker.Yes ->
        (* generalize the solution: substitute only the quantified
           variables by their model values; the result is a whole set of
           (state) solutions sharing this input vector *)
        let subst v =
          if List.mem v quantify then
            Some (if Cnf.Checker.model_var checker v then Aig.true_ else Aig.false_)
          else None
        in
        let cube = Aig.compose aig f ~subst in
        go (Aig.or_ aig acc cube) (count + 1)
    end
  in
  go Aig.false_ 0

let preimage model checker ~frontier ~quantify ~max_enumerations =
  let aig = Netlist.Model.aig model in
  let inlined = Cbq.Preimage.substitute model frontier in
  match enumerate aig checker inlined ~quantify ~max_enumerations with
  | None -> None
  | Some (acc, count) ->
    Some (acc, { enumerations = count; result_size = Aig.size aig acc })

type iteration = { index : int; frontier_size : int; enumerations : int }

type result = {
  verdict : Verdict.t;
  iterations : iteration list;
  total_enumerations : int;
  seconds : float;
}

let pp_result ppf r =
  Format.fprintf ppf "%a iterations=%d enumerations=%d %.3fs" Verdict.pp r.verdict
    (List.length r.iterations) r.total_enumerations r.seconds

let run ?(max_iterations = 200) ?(max_enumerations = 10_000)
    ?(limits = Util.Limits.unlimited) model =
  let watch = Util.Stopwatch.start () in
  let limits = Obs.Limits.arm limits in
  let aig = Netlist.Model.aig model in
  let checker = Cnf.Checker.create aig in
  Cnf.Checker.set_limits checker limits;
  let init = Netlist.Model.init_lit model in
  let input_vars = Netlist.Model.input_vars model in
  let iterations = ref [] in
  let total_enum = ref 0 in
  let finish verdict =
    {
      verdict;
      iterations = List.rev !iterations;
      total_enumerations = !total_enum;
      seconds = Util.Stopwatch.elapsed watch;
    }
  in
  (* an aborted enumeration is either a budgeted Maybe from a governor
     trip (name the resource) or a genuine enumeration-count overflow *)
  let enumeration_stop () =
    match Util.Limits.exhausted limits with
    | Some r -> Verdict.Undecided (Util.Limits.resource_name r)
    | None -> Verdict.Undecided "enumeration budget"
  in
  (* bad states, input-quantified by enumeration as well *)
  let bad_raw = Aig.not_ model.Netlist.Model.property in
  let bad_inputs = List.filter (fun v -> List.mem v input_vars) (Aig.support aig bad_raw) in
  match enumerate aig checker bad_raw ~quantify:bad_inputs ~max_enumerations with
  | None -> finish (enumeration_stop ())
  | Some (b0, n0) ->
    total_enum := n0;
    if Cnf.Checker.satisfiable checker [ init; b0 ] = Cnf.Checker.Yes then
      finish (Verdict.Falsified 0)
    else begin
      let reached = ref b0 in
      let frontier = ref b0 in
      let rec loop k =
        match Util.Limits.check limits with
        | Some r ->
          finish
            (Verdict.Undecided
               (Printf.sprintf "%s (frame %d)" (Util.Limits.resource_name r) (k - 1)))
        | None ->
        if k > max_iterations then finish (Verdict.Undecided "iteration limit")
        else begin
          let support = Aig.support aig (Cbq.Preimage.substitute model !frontier) in
          let quantify = List.filter (fun v -> List.mem v input_vars) support in
          match
            preimage model checker ~frontier:!frontier ~quantify
              ~max_enumerations:(max_enumerations - !total_enum)
          with
          | None -> finish (enumeration_stop ())
          | Some (pre, stats) ->
            total_enum := !total_enum + stats.enumerations;
            iterations :=
              { index = k; frontier_size = Aig.size aig pre; enumerations = stats.enumerations }
              :: !iterations;
            if Cnf.Checker.satisfiable checker [ init; pre ] = Cnf.Checker.Yes then
              finish (Verdict.Falsified k)
            else if Cnf.Checker.satisfiable checker [ pre; Aig.not_ !reached ] = Cnf.Checker.No
            then finish Verdict.Proved
            else begin
              frontier := Aig.and_ aig pre (Aig.not_ !reached);
              reached := Aig.or_ aig !reached pre;
              loop (k + 1)
            end
        end
      in
      loop 1
    end
