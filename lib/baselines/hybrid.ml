type iteration = {
  index : int;
  eliminated_by_cbq : int;
  enumerated : int;
  enumerations : int;
  frontier_size : int;
}

type result = {
  verdict : Verdict.t;
  iterations : iteration list;
  total_enumerations : int;
  seconds : float;
}

let pp_result ppf r =
  Format.fprintf ppf "%a iterations=%d enumerations=%d %.3fs" Verdict.pp r.verdict
    (List.length r.iterations) r.total_enumerations r.seconds

(* a deliberately strict budget: quantify only while the set stays small *)
let default_quant =
  { Cbq.Quantify.default with growth_limit = 1.2; growth_slack = 16 }

let run ?(quant_config = default_quant) ?(max_iterations = 200) ?(max_enumerations = 10_000)
    ?(limits = Util.Limits.unlimited) model =
  let watch = Util.Stopwatch.start () in
  let limits = Obs.Limits.arm limits in
  let aig = Netlist.Model.aig model in
  let checker = Cnf.Checker.create aig in
  Cnf.Checker.set_limits checker limits;
  let prng = Util.Prng.create 3 in
  let init = Netlist.Model.init_lit model in
  let input_vars = Netlist.Model.input_vars model in
  let iterations = ref [] in
  let total_enum = ref 0 in
  let finish verdict =
    {
      verdict;
      iterations = List.rev !iterations;
      total_enumerations = !total_enum;
      seconds = Util.Stopwatch.elapsed watch;
    }
  in
  (* finish the job on a partially quantified literal: enumerate the
     residual variables, generalizing by circuit cofactoring as in
     {!Cofactor_preimage} *)
  let enumerate_residual lit kept =
    if kept = [] then Some (lit, 0)
    else begin
      Cnf.Checker.set_conflict_limit checker None;
      let budget = max_enumerations - !total_enum in
      let rec go acc count =
        if count >= budget then None
        else begin
          match Cnf.Checker.satisfiable checker [ lit; Aig.not_ acc ] with
          | Cnf.Checker.No -> Some (acc, count)
          | Cnf.Checker.Maybe -> None
          | Cnf.Checker.Yes ->
            let subst v =
              if List.mem v kept then
                Some (if Cnf.Checker.model_var checker v then Aig.true_ else Aig.false_)
              else None
            in
            go (Aig.or_ aig acc (Aig.compose aig lit ~subst)) (count + 1)
        end
      in
      go Aig.false_ 0
    end
  in
  let preimage frontier =
    let q =
      Cbq.Preimage.compute ~config:quant_config model checker ~prng ~frontier ~extra_vars:[]
    in
    match enumerate_residual q.Cbq.Preimage.lit q.Cbq.Preimage.kept with
    | None -> None
    | Some (lit, enums) ->
      Some (lit, List.length q.Cbq.Preimage.eliminated, List.length q.Cbq.Preimage.kept, enums)
  in
  (* an aborted enumeration is either a budgeted Maybe from a governor
     trip (name the resource) or a genuine enumeration-count overflow *)
  let enumeration_stop () =
    match Util.Limits.exhausted limits with
    | Some r -> Verdict.Undecided (Util.Limits.resource_name r)
    | None -> Verdict.Undecided "enumeration budget"
  in
  (* iteration 0 *)
  let bad_raw = Aig.not_ model.Netlist.Model.property in
  let bad_inputs = List.filter (fun v -> List.mem v input_vars) (Aig.support aig bad_raw) in
  let q0 = Cbq.Quantify.all ~config:quant_config aig checker ~prng bad_raw ~vars:bad_inputs in
  match enumerate_residual q0.Cbq.Quantify.lit q0.Cbq.Quantify.kept with
  | None -> finish (enumeration_stop ())
  | Some (b0, n0) ->
    total_enum := n0;
    if Cnf.Checker.satisfiable checker [ init; b0 ] = Cnf.Checker.Yes then
      finish (Verdict.Falsified 0)
    else begin
      let reached = ref b0 in
      let frontier = ref b0 in
      let rec loop k =
        match Util.Limits.check limits with
        | Some r ->
          finish
            (Verdict.Undecided
               (Printf.sprintf "%s (frame %d)" (Util.Limits.resource_name r) (k - 1)))
        | None ->
        if k > max_iterations then finish (Verdict.Undecided "iteration limit")
        else begin
          match preimage !frontier with
          | None -> finish (enumeration_stop ())
          | Some (pre, eliminated, kept, enums) ->
            total_enum := !total_enum + enums;
            iterations :=
              {
                index = k;
                eliminated_by_cbq = eliminated;
                enumerated = kept;
                enumerations = enums;
                frontier_size = Aig.size aig pre;
              }
              :: !iterations;
            if Cnf.Checker.satisfiable checker [ init; pre ] = Cnf.Checker.Yes then
              finish (Verdict.Falsified k)
            else if Cnf.Checker.satisfiable checker [ pre; Aig.not_ !reached ] = Cnf.Checker.No
            then finish Verdict.Proved
            else begin
              frontier := Aig.and_ aig pre (Aig.not_ !reached);
              reached := Aig.or_ aig !reached pre;
              loop (k + 1)
            end
        end
      in
      loop 1
    end
