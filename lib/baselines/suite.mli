(** The full engine table: every verification engine in the repo behind
    one uniform signature.

    This is the single registry consumed by the fuzz oracle's
    differential check, the portfolio racer and the tests — one place to
    add an engine and have every cross-engine consumer pick it up. Each
    engine takes a {!Util.Limits} governor and a model and returns an
    anytime {!Verdict.t} plus, when it can produce one, a counterexample
    trace.

    Engines mutate their model's AIG manager while they run, so callers
    that reuse one model across engines must hand each engine its own
    clone (see [Par.Clone]); the table itself takes no position on
    cloning. *)

type config = {
  bmc_depth : int;  (** BMC unrolling ceiling *)
  induction_k : int;  (** k-induction ceiling *)
  make_trace : bool;  (** ask CBQ engines to rebuild counterexample traces *)
  quantify_backend : Cbq.Quantify.backend;
      (** quantification backend for the CBQ engines (circuit / pqe /
          auto); the other engines ignore it *)
}

val default_config : config

type engine = {
  name : string;
  run : limits:Util.Limits.t -> Netlist.Model.t -> Verdict.t * Cbq.Trace.t option;
}

(** All engines, in the canonical (deterministic) order:
    cbq-bwd, cbq-fwd, bdd-bwd, bdd-fwd, bmc, induction, cofactor, hybrid. *)
val engines : ?config:config -> unit -> engine list

(** Names of {!engines}, in the same order. *)
val names : string list

(** [find ?config name] — the named engine, or [None] for an unknown name. *)
val find : ?config:config -> string -> engine option

val of_cbq : Cbq.Reachability.verdict -> Verdict.t
val trace_of_cbq : Cbq.Reachability.verdict -> Cbq.Trace.t option
