(* cbq-mc: command-line front-end.

   Sub-commands:
     list              show the benchmark registry
     run               verify a registry circuit (or an .aag file) with a
                       chosen engine
     export            write a registry circuit as ASCII AIGER
     quantify          quantification demo on a combinational cone
     fuzz              differential fuzzing with cross-engine oracles *)

open Cmdliner

type engine =
  | Cbq_engine
  | Cbq_fwd
  | Bdd_bwd
  | Bdd_fwd
  | Bmc_engine
  | Induction_engine
  | Cofactor
  | Hybrid_engine
  | Portfolio

let engine_names =
  [
    ("cbq", Cbq_engine);
    ("cbq-fwd", Cbq_fwd);
    ("bdd-bwd", Bdd_bwd);
    ("bdd-fwd", Bdd_fwd);
    ("bmc", Bmc_engine);
    ("induction", Induction_engine);
    ("cofactor", Cofactor);
    ("hybrid", Hybrid_engine);
    ("portfolio", Portfolio);
  ]

let load_model circuit param aag =
  match aag with
  | Some path -> (Netlist.Aiger.read_file path, None)
  | None ->
    let model, status = Circuits.Registry.build circuit param in
    (model, Some status)

let print_iterations_cbq result =
  List.iter
    (fun it ->
      Format.printf "  iter %2d: frontier=%d reached=%d inputs eliminated=%d kept=%d (%.3fs)@."
        it.Cbq.Reachability.index it.Cbq.Reachability.frontier_size
        it.Cbq.Reachability.reached_size it.Cbq.Reachability.eliminated_inputs
        it.Cbq.Reachability.kept_inputs it.Cbq.Reachability.seconds)
    result.Cbq.Reachability.iterations

let print_minimized model t =
  let essential = Cbq.Trace.minimize model t in
  Format.printf "essential inputs (every completion is a counterexample):@.";
  Array.iteri
    (fun k frame ->
      Format.printf "  frame %d:" k;
      List.iter (fun (v, b) -> Format.printf " x%d=%d" v (if b then 1 else 0)) frame;
      Format.printf "@.")
    essential

let run_engine ?(minimize = false) ?jobs ?(sweep_jobs = 1)
    ?(quantify_backend = Cbq.Quantify.default.Cbq.Quantify.backend)
    ?(make_limits = fun () -> Util.Limits.create ()) ~limits engine model verbose trace_wanted =
  match engine with
  | Cbq_engine | Cbq_fwd ->
    let config = { Cbq.Reachability.default with make_trace = trace_wanted } in
    let quant =
      { config.Cbq.Reachability.quant with Cbq.Quantify.backend = quantify_backend }
    in
    let quant =
      if sweep_jobs <= 1 then quant
      else { quant with Cbq.Quantify.sweep = { quant.Cbq.Quantify.sweep with sat_jobs = sweep_jobs } }
    in
    let config = { config with quant } in
    let r =
      if engine = Cbq_fwd then Cbq.Forward.run ~config ~limits model
      else Cbq.Reachability.run ~config ~limits model
    in
    Format.printf "%a@." Cbq.Reachability.pp_result r;
    if verbose then print_iterations_cbq r;
    (match r.Cbq.Reachability.verdict with
    | Cbq.Reachability.Falsified { trace = Some t; _ } when trace_wanted ->
      Format.printf "%a" (Cbq.Trace.pp model) t;
      if minimize then print_minimized model t
    | Cbq.Reachability.Proved -> (
      match r.Cbq.Reachability.invariant with
      | Some inv -> (
        match Cbq.Certify.check model ~invariant:inv with
        | Ok () ->
          Format.printf "certificate: inductive invariant of %d AND nodes, independently checked@."
            (Aig.size (Netlist.Model.aig model) inv)
        | Error f -> Format.printf "certificate REJECTED: %a@." Cbq.Certify.pp_failure f)
      | None -> Format.printf "certificate: none (partial quantification left residuals)@.")
    | Cbq.Reachability.Falsified _ | Cbq.Reachability.Out_of_budget _ -> ());
    (match r.Cbq.Reachability.verdict with
    | Cbq.Reachability.Proved -> `Proved
    | Cbq.Reachability.Falsified { depth; _ } -> `Falsified depth
    | Cbq.Reachability.Out_of_budget _ -> `Undecided)
  | Bdd_bwd | Bdd_fwd ->
    let f = if engine = Bdd_bwd then Baselines.Bdd_mc.backward else Baselines.Bdd_mc.forward in
    let r = f ~limits model in
    Format.printf "%a@." Baselines.Bdd_mc.pp_result r;
    if verbose then
      List.iter
        (fun it ->
          Format.printf "  iter %2d: frontier-bdd=%d reached-bdd=%d@." it.Baselines.Bdd_mc.index
            it.Baselines.Bdd_mc.frontier_nodes it.Baselines.Bdd_mc.reached_nodes)
        r.Baselines.Bdd_mc.iterations;
    (match r.Baselines.Bdd_mc.verdict with
    | Baselines.Verdict.Proved -> `Proved
    | Baselines.Verdict.Falsified d -> `Falsified d
    | Baselines.Verdict.Undecided _ -> `Undecided)
  | Bmc_engine ->
    let r = Baselines.Bmc.run ~limits model in
    Format.printf "%a@." Baselines.Bmc.pp_result r;
    (match r.Baselines.Bmc.trace with
    | Some t when trace_wanted -> Format.printf "%a" (Cbq.Trace.pp model) t
    | Some _ | None -> ());
    (match r.Baselines.Bmc.verdict with
    | Baselines.Verdict.Proved -> `Proved
    | Baselines.Verdict.Falsified d -> `Falsified d
    | Baselines.Verdict.Undecided _ -> `Undecided)
  | Induction_engine ->
    let r = Baselines.Induction.run ~limits model in
    Format.printf "%a@." Baselines.Induction.pp_result r;
    (match r.Baselines.Induction.verdict with
    | Baselines.Verdict.Proved -> `Proved
    | Baselines.Verdict.Falsified d -> `Falsified d
    | Baselines.Verdict.Undecided _ -> `Undecided)
  | Cofactor ->
    let r = Baselines.Cofactor_preimage.run ~limits model in
    Format.printf "%a@." Baselines.Cofactor_preimage.pp_result r;
    (match r.Baselines.Cofactor_preimage.verdict with
    | Baselines.Verdict.Proved -> `Proved
    | Baselines.Verdict.Falsified d -> `Falsified d
    | Baselines.Verdict.Undecided _ -> `Undecided)
  | Hybrid_engine ->
    let r = Baselines.Hybrid.run ~limits model in
    Format.printf "%a@." Baselines.Hybrid.pp_result r;
    (match r.Baselines.Hybrid.verdict with
    | Baselines.Verdict.Proved -> `Proved
    | Baselines.Verdict.Falsified d -> `Falsified d
    | Baselines.Verdict.Undecided _ -> `Undecided)
  | Portfolio ->
    (* the shared governor is not handed to the racers: each entrant
       gets its own cancellable governor from [make_limits] so the
       winner can stop the losers without poisoning anything shared *)
    ignore limits;
    let config =
      {
        Baselines.Suite.default_config with
        make_trace = trace_wanted;
        quantify_backend;
      }
    in
    let r = Baselines.Portfolio.run ~config ?jobs ~make_limits model in
    Format.printf "%a@." Baselines.Portfolio.pp_result r;
    (match r.Baselines.Portfolio.trace with
    | Some t when trace_wanted ->
      (* clones preserve numbering, so the winner's trace replays on the
         original model *)
      Format.printf "%a" (Cbq.Trace.pp model) t;
      if minimize then print_minimized model t
    | Some _ | None -> ());
    (match r.Baselines.Portfolio.verdict with
    | Baselines.Verdict.Proved -> `Proved
    | Baselines.Verdict.Falsified d -> `Falsified d
    | Baselines.Verdict.Undecided _ -> `Undecided)

(* ---------- list ---------- *)

let list_cmd =
  let doc = "list the built-in benchmark circuits" in
  let run () = Format.printf "%a" Circuits.Registry.pp_list () in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---------- run ---------- *)

let circuit_arg =
  Arg.(value & opt string "counter" & info [ "c"; "circuit" ] ~docv:"NAME" ~doc:"registry circuit name")

let param_arg =
  Arg.(value & opt (some int) None & info [ "p"; "param" ] ~docv:"N" ~doc:"family size parameter")

let aag_arg =
  Arg.(value & opt (some file) None & info [ "aag" ] ~docv:"FILE" ~doc:"verify an ASCII AIGER file instead")

let engine_arg =
  Arg.(
    value
    & opt (enum engine_names) Cbq_engine
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:
          "verification engine: cbq | cbq-fwd | bdd-bwd | bdd-fwd | bmc | induction | cofactor \
           | hybrid | portfolio (race all of them, first decisive verdict wins)")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "domains for the portfolio race (default: one per engine, capped by the machine's \
           recommended domain count); ignored by single engines")

let sweep_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "sweep-jobs" ] ~docv:"N"
        ~doc:
          "domains for the sweeper's SAT-merge stage inside the cbq engines (docs/PARALLEL.md); \
           1 keeps the stage fully sequential")

let quantify_backend_enum =
  List.map
    (fun name -> (name, Option.get (Cbq.Quantify.backend_of_string name)))
    Cbq.Quantify.backend_names

let quantify_backend_arg =
  Arg.(
    value
    & opt (enum quantify_backend_enum) Cbq.Quantify.default.Cbq.Quantify.backend
    & info [ "quantify-backend" ] ~docv:"BACKEND"
        ~doc:
          "quantifier-elimination backend for the cbq engines: $(b,circuit) (cofactor \
           disjunction + circuit optimization), $(b,pqe) (CNF-level partial quantifier \
           elimination by redundancy proving), or $(b,auto) (per-variable selector with \
           cross-backend fallback, docs/ALGORITHMS.md); the non-CBQ engines ignore it")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"per-iteration detail")
let trace_arg = Arg.(value & flag & info [ "t"; "trace" ] ~doc:"print the counterexample trace")

let seq_sweep_arg =
  Arg.(
    value & flag
    & info [ "seq-sweep" ]
        ~doc:"reduce the model by register-correspondence sweeping before verification")

let coi_arg =
  Arg.(
    value & flag
    & info [ "coi" ] ~doc:"drop latches and inputs outside the property's cone of influence")

let minimize_arg =
  Arg.(
    value & flag
    & info [ "minimize" ]
        ~doc:"with --trace: also print the essential inputs (ternary-simulation minimization)")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"collect telemetry and print a human-readable summary after the run")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:"collect telemetry and write the JSON run report to $(docv) (schema: docs/OBSERVABILITY.md)")

let trace_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:
          "record structured trace events and write them to $(docv) in Chrome trace_event \
           format (load in chrome://tracing or ui.perfetto.dev)")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SEC"
        ~doc:
          "wall-clock budget in seconds (monotonic clock). On expiry the run degrades \
           gracefully: optimization stages are skipped, SAT queries answer Maybe, and the \
           engine reports an anytime UNDECIDED verdict naming the deadline")

let max_conflicts_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-conflicts" ] ~docv:"N"
        ~doc:"global SAT-conflict pool shared by every query of the run")

let max_aig_nodes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-aig-nodes" ] ~docv:"N"
        ~doc:"ceiling on the AIG manager's node count (checked at frame boundaries)")

let max_bdd_nodes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-bdd-nodes" ] ~docv:"N"
        ~doc:
          "cumulative BDD node pool across all sweeping managers (non-fatal: draining it \
           only disables further BDD sweeping; the bdd-bwd/bdd-fwd engines treat it as \
           their verdict limit)")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:"report live per-frame progress on stderr (updated in place on a terminal)")

let sample_interval_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "sample-interval" ] ~docv:"SEC"
        ~doc:
          "sample heap size, counter values and remaining budgets every $(docv) seconds on a \
           background domain; the series lands in the run report's timeseries section and as \
           counter rows in --trace-json")

let store_opt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "append the run report to the store at $(docv) (see $(b,cbq-mc report) for querying \
           stored runs)")

let engine_name engine = fst (List.find (fun (_, e) -> e = engine) engine_names)

let emit_stats ~stats ~stats_json ~store ~model ~engine ~quantify_backend ~watch ~limits
    outcome =
  Obs.meta "tool" "cbq-mc";
  Obs.meta "model" (Netlist.Model.name model);
  Obs.meta "engine" (engine_name engine);
  Obs.meta "quantify_backend" (Cbq.Quantify.backend_name quantify_backend);
  Obs.meta "verdict"
    (match outcome with
    | `Proved -> "proved"
    | `Falsified d -> Printf.sprintf "falsified:%d" d
    | `Undecided -> "undecided");
  (match Util.Limits.exhausted limits with
  | Some r -> Obs.meta "exhausted" (Util.Limits.resource_name r)
  | None -> ());
  Obs.meta "seconds" (Printf.sprintf "%.6f" (Util.Stopwatch.elapsed watch));
  if stats then Format.printf "%a" Obs.pp_summary ();
  (match stats_json with
  | Some path ->
    Obs.write_report path;
    Format.printf "stats: wrote %s@." path
  | None -> ());
  match store with
  | Some dir ->
    (* snapshot before opening the store: the store's own index/catchup
       bookkeeping counters depend on the directory's history, not on
       this run, and would read as drift under `report trend` *)
    let report = Obs.report () in
    let st = Obs.Store.open_ dir in
    let entry = Obs.Store.append st report in
    Format.printf "store: appended run %d to %s@." entry.Obs.Store.id dir
  | None -> ()

let run_cmd =
  let doc = "verify a circuit's safety property" in
  let run circuit param aag engine jobs sweep_jobs quantify_backend verbose trace seq_sweep coi
      minimize stats stats_json trace_json progress sample_interval store timeout max_conflicts
      max_aig_nodes max_bdd_nodes =
    (* --progress reads the sweep merge counters, --sample-interval and
       --store record them, so all three need the registry live even
       without --stats *)
    let want_stats = stats || stats_json <> None || store <> None in
    if want_stats || progress || sample_interval <> None then begin
      Obs.reset ();
      Obs.set_enabled true
    end;
    if trace_json <> None then begin
      Obs.Trace_events.reset ();
      Obs.Trace_events.set_enabled true
    end;
    if progress then Obs.Progress.start ();
    let watch = Util.Stopwatch.start () in
    (* the governor's deadline clock starts here, before model build, so
       --timeout bounds the whole invocation *)
    let limits =
      if timeout = None && max_conflicts = None && max_aig_nodes = None && max_bdd_nodes = None
      then Util.Limits.unlimited
      else Util.Limits.create ?timeout ?max_conflicts ?max_aig_nodes ?max_bdd_nodes ()
    in
    (* the sampler covers model build and reductions, not just the
       engine: a run that dies loading a huge AIG should still leave a
       heap curve *)
    let sampler =
      Option.map (fun interval -> Obs.Sampler.start ~interval ~limits ()) sample_interval
    in
    (* teardown must survive an engine exception: the sampler domain is
       joined (an unjoined domain outlives main) and the progress line
       is terminated so the trace doesn't land mid-line *)
    let model, status, outcome =
      Fun.protect
        ~finally:(fun () ->
          Option.iter Obs.Sampler.stop sampler;
          Obs.Progress.finish ())
        (fun () ->
          let model, status = load_model circuit param aag in
          Format.printf "model %s: %a@." (Netlist.Model.name model) Netlist.Model.pp_stats
            (Netlist.Model.stats model);
          let model =
            if coi then begin
              let reduced, report = Netlist.Coi.reduce model in
              Format.printf "coi: %a@." Netlist.Coi.pp_report report;
              reduced
            end
            else model
          in
          let model =
            if seq_sweep then begin
              let reduced, report = Cbq.Seq_sweep.reduce model in
              Format.printf "seq-sweep: %a@." Cbq.Seq_sweep.pp_report report;
              reduced
            end
            else model
          in
          let make_limits () =
            Util.Limits.create ?timeout ?max_conflicts ?max_aig_nodes ?max_bdd_nodes ()
          in
          let outcome =
            run_engine ~minimize ?jobs ~sweep_jobs ~quantify_backend ~make_limits ~limits
              engine model verbose trace
          in
          (model, status, outcome))
    in
    (match Util.Limits.exhausted limits with
    | Some r ->
      Format.printf "limits: %s exhausted after %.2fs@." (Util.Limits.resource_name r)
        (Util.Limits.elapsed limits)
    | None -> ());
    if want_stats then
      emit_stats ~stats ~stats_json ~store ~model ~engine ~quantify_backend ~watch ~limits
        outcome;
    (match trace_json with
    | Some path ->
      Obs.Trace_events.set_enabled false;
      Obs.Trace_events.write path;
      Format.printf "trace: wrote %s (%d events, %d dropped)@." path
        (Obs.Trace_events.recorded ()) (Obs.Trace_events.dropped ())
    | None -> ());
    match status with
    | None ->
      (* under explicit resource limits an Undecided verdict is the
         documented graceful-degradation outcome, not a failure *)
      if outcome = `Undecided && not (Util.Limits.is_limited limits) then exit 2 else exit 0
    | Some expected ->
      let agrees =
        match (outcome, expected) with
        | `Proved, Circuits.Registry.Safe -> true
        | `Falsified d, Circuits.Registry.Unsafe e -> d = e
        | `Undecided, _ -> true
        | `Proved, Circuits.Registry.Unsafe _ | `Falsified _, Circuits.Registry.Safe -> false
      in
      if not agrees then begin
        Format.printf "WARNING: verdict disagrees with the family oracle@.";
        exit 1
      end
  in
  ( Cmd.info "run" ~doc,
    Term.(
      const run $ circuit_arg $ param_arg $ aag_arg $ engine_arg $ jobs_arg $ sweep_jobs_arg
      $ quantify_backend_arg $ verbose_arg $ trace_arg $ seq_sweep_arg $ coi_arg $ minimize_arg
      $ stats_arg $ stats_json_arg $ trace_json_arg $ progress_arg $ sample_interval_arg
      $ store_opt_arg $ timeout_arg $ max_conflicts_arg $ max_aig_nodes_arg
      $ max_bdd_nodes_arg) )

let run_term = snd run_cmd
let run_cmd = Cmd.v (fst run_cmd) run_term

(* ---------- export ---------- *)

let export_cmd =
  let doc = "write a registry circuit as AIGER (ascii, or binary with --binary)" in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"output path")
  in
  let binary_arg = Arg.(value & flag & info [ "binary" ] ~doc:"compact binary 'aig' format") in
  let run circuit param out binary =
    let model, _ = Circuits.Registry.build circuit param in
    if binary then Netlist.Aiger.write_binary_file model out else Netlist.Aiger.write_file model out;
    Format.printf "wrote %s (%a)@." out Netlist.Model.pp_stats (Netlist.Model.stats model)
  in
  Cmd.v (Cmd.info "export" ~doc) Term.(const run $ circuit_arg $ param_arg $ out_arg $ binary_arg)

(* ---------- quantify ---------- *)

let quantify_cmd =
  let doc = "circuit-based quantification demo on a combinational cone" in
  let cone_arg =
    Arg.(value & opt string "mult" & info [ "cone" ] ~docv:"NAME" ~doc:"adder|mult|hwb|parity|majority|random")
  in
  let size_arg = Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"cone size parameter") in
  let count_arg =
    Arg.(value & opt int 4 & info [ "k" ] ~docv:"K" ~doc:"number of variables to quantify")
  in
  let run cone n k backend =
    match List.assoc_opt cone Circuits.Comb.catalogue with
    | None -> Format.printf "unknown cone %S@." cone
    | Some make ->
      let c = make n in
      let aig = c.Circuits.Comb.aig in
      let checker = Cnf.Checker.create aig in
      let prng = Util.Prng.create 11 in
      let vars =
        List.filteri (fun i _ -> i < k) c.Circuits.Comb.vars
      in
      Format.printf "cone %s: %d AND nodes, quantifying %d of %d variables (%s backend)@."
        c.Circuits.Comb.name
        (Aig.size aig c.Circuits.Comb.root)
        (List.length vars)
        (List.length c.Circuits.Comb.vars)
        (Cbq.Quantify.backend_name backend);
      let naive =
        Cbq.Quantify.all ~config:Cbq.Quantify.naive_config aig checker ~prng
          c.Circuits.Comb.root ~vars
      in
      let config = { Cbq.Quantify.default with backend } in
      let full = Cbq.Quantify.all ~config aig checker ~prng c.Circuits.Comb.root ~vars in
      Format.printf "naive Shannon: %d nodes; merged+optimized: %d nodes@."
        (Aig.size aig naive.Cbq.Quantify.lit)
        (Aig.size aig full.Cbq.Quantify.lit);
      List.iter
        (fun r -> Format.printf "  %a@." Cbq.Quantify.pp_var_report r)
        full.Cbq.Quantify.reports
  in
  Cmd.v (Cmd.info "quantify" ~doc)
    Term.(const run $ cone_arg $ size_arg $ count_arg $ quantify_backend_arg)

(* ---------- reduce ---------- *)

let reduce_cmd =
  let doc = "reduce a model (cone of influence + register correspondence) and export it" in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"write the reduced model as ascii AIGER")
  in
  let run circuit param aag out =
    let model, _ = load_model circuit param aag in
    Format.printf "model %s: %a@." (Netlist.Model.name model) Netlist.Model.pp_stats
      (Netlist.Model.stats model);
    let model, coi_report = Netlist.Coi.reduce model in
    Format.printf "coi:       %a@." Netlist.Coi.pp_report coi_report;
    let model, sweep_report = Cbq.Seq_sweep.reduce model in
    Format.printf "seq-sweep: %a@." Cbq.Seq_sweep.pp_report sweep_report;
    Format.printf "reduced:   %a@." Netlist.Model.pp_stats (Netlist.Model.stats model);
    match out with
    | Some path ->
      Netlist.Aiger.write_file model path;
      Format.printf "wrote %s@." path
    | None -> ()
  in
  Cmd.v (Cmd.info "reduce" ~doc) Term.(const run $ circuit_arg $ param_arg $ aag_arg $ out_arg)

(* ---------- cec ---------- *)

let cec_cmd =
  let doc = "combinational equivalence check: ripple-carry vs carry-lookahead adder" in
  let size_arg = Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"adder width") in
  let bug_arg = Arg.(value & flag & info [ "bug" ] ~doc:"inject a bug into the lookahead adder") in
  let run n bug =
    let ripple = Circuits.Comb.adder_carry n in
    let cla = Circuits.Comb.carry_lookahead ~bug n in
    let report =
      Sweep.Cec.check_cones
        (ripple.Circuits.Comb.aig, ripple.Circuits.Comb.root, ripple.Circuits.Comb.vars)
        (cla.Circuits.Comb.aig, cla.Circuits.Comb.root, cla.Circuits.Comb.vars)
    in
    Format.printf "%s vs %s: %a@." ripple.Circuits.Comb.name cla.Circuits.Comb.name
      Sweep.Cec.pp_verdict report.Sweep.Cec.verdict;
    Format.printf "  closed by sweeping alone: %b@." report.Sweep.Cec.merged_to_same_node;
    Format.printf "  %a@." Sweep.Sweeper.pp_report report.Sweep.Cec.sweep;
    match report.Sweep.Cec.verdict with
    | Sweep.Cec.Equivalent -> if bug then exit 1
    | Sweep.Cec.Inequivalent _ -> if not bug then exit 1
    | Sweep.Cec.Unknown -> exit 2
  in
  Cmd.v (Cmd.info "cec" ~doc) Term.(const run $ size_arg $ bug_arg)

(* ---------- fuzz ---------- *)

let fuzz_cmd =
  let doc = "differential fuzzing: random models, cross-engine + algebraic oracles" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates seeded random sequential models and checks each one against three oracle \
         layers: AIGER round-trip identity, SAT-checked algebraic identities of the \
         quantification pipeline, and verdict agreement across every verification engine \
         (see docs/TESTING.md). Failures are minimized by a ddmin-style shrinker and, with \
         $(b,--corpus), persisted as replayable AIGER repros.";
      `P
        "Resource limits (--timeout etc.) apply per engine run, so a tiny budget fuzzes the \
         governor-degradation paths: an engine that runs out of budget reports UNDECIDED, \
         which is compatible with any other verdict.";
    ]
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"N" ~doc:"master seed of the campaign")
  in
  let count_arg =
    Arg.(value & opt int 100 & info [ "n"; "count" ] ~docv:"K" ~doc:"number of models to generate")
  in
  let max_latches_arg =
    Arg.(value & opt int Fuzz.Gen.default.Fuzz.Gen.max_latches
         & info [ "max-latches" ] ~docv:"L" ~doc:"largest generated model, in latches")
  in
  let max_inputs_arg =
    Arg.(value & opt int Fuzz.Gen.default.Fuzz.Gen.max_inputs
         & info [ "max-inputs" ] ~docv:"I" ~doc:"largest generated model, in primary inputs")
  in
  let cone_depth_arg =
    Arg.(value & opt int Fuzz.Gen.default.Fuzz.Gen.cone_depth
         & info [ "cone-depth" ] ~docv:"D" ~doc:"maximum next-state cone depth")
  in
  let shared_subcones_arg =
    Arg.(value & opt float Fuzz.Gen.default.Fuzz.Gen.shared_subcones
         & info [ "shared-subcones" ] ~docv:"P"
             ~doc:
               "probability of a mux-of-xor next-state cone over shared deep subcones (a \
                PQE-trigger shape); 0 leaves the generator streams untouched")
  in
  let wide_support_arg =
    Arg.(value & opt float Fuzz.Gen.default.Fuzz.Gen.wide_support
         & info [ "wide-support" ] ~docv:"P"
             ~doc:
               "probability of a next-state cone ranging over the whole variable pool (a \
                PQE support-cap trigger); 0 leaves the generator streams untouched")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None
         & info [ "corpus" ] ~docv:"DIR" ~doc:"write shrunk failing models into $(docv)")
  in
  let no_shrink_arg =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"report failures without minimizing them")
  in
  let fuzz_jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "shard the campaign across $(docv) domains. Per-model seeds are derived from the \
             master seed by index, and corpus writes are funnelled through one domain in index \
             order, so results and repro files are identical at any $(docv)")
  in
  let inject_fault_arg =
    Arg.(value & flag
         & info [ "inject-sweep-fault" ]
             ~doc:
               "self-test: make the sweeper merge SAT-refuted pairs (a deliberate soundness \
                bug) and confirm the oracles catch it")
  in
  let run seed count max_latches max_inputs cone_depth shared_subcones wide_support corpus
      no_shrink jobs inject_fault quantify_backend stats stats_json progress timeout
      max_conflicts max_aig_nodes max_bdd_nodes =
    if stats || stats_json <> None || progress then begin
      Obs.reset ();
      Obs.set_enabled true
    end;
    let knobs =
      {
        Fuzz.Gen.default with
        Fuzz.Gen.max_latches;
        max_inputs;
        cone_depth;
        min_latches = min Fuzz.Gen.default.Fuzz.Gen.min_latches max_latches;
        min_inputs = min Fuzz.Gen.default.Fuzz.Gen.min_inputs max_inputs;
        shared_subcones;
        wide_support;
      }
    in
    (match Fuzz.Gen.validate_knobs knobs with
    | Ok () -> ()
    | Error msg ->
      Format.eprintf "fuzz: invalid knobs: %s@." msg;
      exit 2);
    let config =
      {
        Fuzz.Oracle.default_config with
        Fuzz.Oracle.budget =
          { Fuzz.Oracle.timeout; max_conflicts; max_aig_nodes; max_bdd_nodes };
        quantify_backend;
      }
    in
    let watch = Util.Stopwatch.start () in
    let on_model i model_seed =
      if progress && i mod 10 = 0 then
        Format.eprintf "fuzz: model %d/%d (seed %d)\r%!" i count model_seed
    in
    let campaign () =
      Fuzz.Runner.run ~knobs ~config ?corpus_dir:corpus ~shrink:(not no_shrink) ~on_model
        ~jobs ~seed ~count ()
    in
    let result =
      if inject_fault then Sweep.Fault.with_injection campaign else campaign ()
    in
    if progress then Format.eprintf "@.";
    List.iter
      (fun f ->
        Format.printf "FAIL seed %d: %a@." f.Fuzz.Runner.seed Fuzz.Oracle.pp_failure
          f.Fuzz.Runner.failure;
        (match f.Fuzz.Runner.shrunk with
        | Some s ->
          Format.printf "  shrunk to %a after %d candidates (%d accepted, %d rounds)@."
            Netlist.Model.pp_stats
            (Netlist.Model.stats s.Fuzz.Shrink.model)
            s.Fuzz.Shrink.candidates s.Fuzz.Shrink.accepted s.Fuzz.Shrink.rounds
        | None -> ());
        match f.Fuzz.Runner.entry with
        | Some e -> Format.printf "  repro: %s@." e.Fuzz.Corpus.path
        | None -> ())
      result.Fuzz.Runner.failures;
    let n_failures = List.length result.Fuzz.Runner.failures in
    Format.printf "fuzz: %d models, %d failures (%.2fs)@." result.Fuzz.Runner.count n_failures
      (Util.Stopwatch.elapsed watch);
    if stats then Format.printf "%a" Obs.pp_summary ();
    (match stats_json with
    | Some path ->
      Obs.meta "tool" "cbq-mc-fuzz";
      Obs.meta "seed" (string_of_int seed);
      Obs.meta "failures" (string_of_int n_failures);
      Obs.meta "quantify_backend" (Cbq.Quantify.backend_name quantify_backend);
      Obs.write_report path;
      Format.printf "stats: wrote %s@." path
    | None -> ());
    (* the self-test inverts the exit contract: finding the injected bug
       is the passing outcome *)
    if inject_fault then exit (if n_failures > 0 then 0 else 1)
    else exit (if n_failures > 0 then 1 else 0)
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc ~man)
    Term.(
      const run $ seed_arg $ count_arg $ max_latches_arg $ max_inputs_arg $ cone_depth_arg
      $ shared_subcones_arg $ wide_support_arg $ corpus_arg $ no_shrink_arg $ fuzz_jobs_arg
      $ inject_fault_arg $ quantify_backend_arg $ stats_arg $ stats_json_arg $ progress_arg
      $ timeout_arg $ max_conflicts_arg $ max_aig_nodes_arg $ max_bdd_nodes_arg)

(* ---------- sat ---------- *)

let sat_cmd =
  let doc = "solve a DIMACS CNF file with the built-in CDCL solver" in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"DIMACS input")
  in
  let run path =
    match Sat.Dimacs.solve_file path with
    | Error msg ->
      Format.printf "error: %s@." msg;
      exit 2
    | Ok (result, solver) -> (
      Format.printf "%a@." Sat.Solver.pp_stats (Sat.Solver.stats solver);
      match result with
      | Sat.Solver.Sat ->
        Format.printf "s SATISFIABLE@.";
        let values =
          List.init (Sat.Solver.num_vars solver) (fun v ->
              match Sat.Solver.value solver v with
              | Some true -> string_of_int (v + 1)
              | Some false | None -> string_of_int (-(v + 1)))
        in
        Format.printf "v %s 0@." (String.concat " " values)
      | Sat.Solver.Unsat -> Format.printf "s UNSATISFIABLE@."
      | Sat.Solver.Unknown ->
        Format.printf "s UNKNOWN@.";
        exit 2)
  in
  Cmd.v (Cmd.info "sat" ~doc) Term.(const run $ file_arg)

(* ---------- report ----------

   Query the on-disk run-report store written by `run --store DIR`:
   list stored runs, show one, diff two by id, and walk the trend of
   the last N runs of one model/engine family. Exit codes follow the
   regression differ: 0 clean, 1 gated drift, 2 usage or store error. *)

let report_store_arg =
  Arg.(
    value & opt string "runs"
    & info [ "store" ] ~docv:"DIR" ~doc:"run-report store directory (default: runs)")

let model_filter_arg =
  Arg.(value & opt (some string) None & info [ "model" ] ~docv:"NAME" ~doc:"only runs of this model")

let engine_filter_arg =
  Arg.(value & opt (some string) None & info [ "engine" ] ~docv:"ENGINE" ~doc:"only runs of this engine")

let report_threshold_arg =
  Arg.(
    value & opt float 0.1
    & info [ "threshold" ] ~docv:"REL" ~doc:"relative gate for deterministic metrics (default 0.1)")

let report_time_threshold_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "time-threshold" ] ~docv:"REL"
        ~doc:"also gate wall-clock span seconds at this relative delta (default: not gated)")

let store_fail msg =
  Format.eprintf "cbq-mc report: %s@." msg;
  exit 2

let open_store dir =
  try Obs.Store.open_ dir with
  | Sys_error msg -> store_fail msg
  | Unix.Unix_error (e, _, arg) -> store_fail (Printf.sprintf "%s: %s" arg (Unix.error_message e))

let print_meta_diff =
  List.iter (fun (key, o, n) -> Format.printf "  meta: %s differs: %s -> %s@." key o n)

let print_deltas ~threshold ~time_threshold deltas =
  List.iter
    (fun d ->
      Format.printf "  %s%a@."
        (if Obs.Regress.exceeds ~threshold ~time_threshold d then "! " else "  ")
        Obs.Regress.pp_delta d)
    deltas

let report_list_cmd =
  let doc = "list stored runs (newest last)" in
  let run dir model engine =
    let store = open_store dir in
    let entries = Obs.Store.select ?model ?engine store in
    if entries = [] then Format.printf "no stored runs in %s@." (Obs.Store.dir store)
    else begin
      Format.printf "%4s  %-20s  %-16s  %-10s  %s@." "id" "stored_at" "model" "engine" "verdict";
      List.iter
        (fun e ->
          Format.printf "%4d  %-20s  %-16s  %-10s  %s@." e.Obs.Store.id e.Obs.Store.stored_at
            e.Obs.Store.model e.Obs.Store.engine e.Obs.Store.verdict)
        entries
    end
  in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(const run $ report_store_arg $ model_filter_arg $ engine_filter_arg)

let report_show_cmd =
  let doc = "print one stored run report as JSON" in
  let id_arg = Arg.(required & pos 0 (some int) None & info [] ~docv:"ID" ~doc:"run id") in
  let run dir id =
    let store = open_store dir in
    match Obs.Store.load store id with
    | Error msg -> store_fail msg
    | Ok (_, report) -> Format.printf "%a@." Obs.Json.pp report
  in
  Cmd.v (Cmd.info "show" ~doc) Term.(const run $ report_store_arg $ id_arg)

let report_diff_cmd =
  let doc = "diff two stored runs by id, gating metric drift" in
  let old_arg = Arg.(required & pos 0 (some int) None & info [] ~docv:"OLD_ID" ~doc:"baseline run id") in
  let new_arg = Arg.(required & pos 1 (some int) None & info [] ~docv:"NEW_ID" ~doc:"candidate run id") in
  let run dir old_id new_id threshold time_threshold =
    let store = open_store dir in
    let load id =
      match Obs.Store.load store id with
      | Error msg -> store_fail msg
      | Ok (entry, report) -> (
        match Obs.Regress.validate_report report with
        | Error msg -> store_fail (Printf.sprintf "run %d: invalid report: %s" id msg)
        | Ok report -> (entry, report))
    in
    let _, old_report = load old_id and _, new_report = load new_id in
    print_meta_diff (Obs.Regress.meta_mismatches old_report new_report);
    let deltas = Obs.Regress.compare_reports old_report new_report in
    print_deltas ~threshold ~time_threshold deltas;
    let gated =
      List.filter (Obs.Regress.exceeds ~threshold ~time_threshold) deltas |> List.length
    in
    if gated = 0 then Format.printf "OK: runs %d -> %d within thresholds@." old_id new_id
    else begin
      Format.printf "DRIFT: %d gated delta%s between runs %d and %d@." gated
        (if gated = 1 then "" else "s")
        old_id new_id;
      exit 1
    end
  in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(
      const run $ report_store_arg $ old_arg $ new_arg $ report_threshold_arg
      $ report_time_threshold_arg)

let report_trend_cmd =
  let doc = "walk the last N stored runs of one model/engine family and flag metric drift" in
  let last_arg =
    Arg.(value & opt int 5 & info [ "last" ] ~docv:"N" ~doc:"window size (default 5)")
  in
  let run dir model engine last threshold time_threshold =
    let store = open_store dir in
    (* default family: whatever the newest stored run is *)
    let model, engine =
      match (model, engine, List.rev (Obs.Store.entries store)) with
      | (Some _ as m), (Some _ as e), _ -> (m, e)
      | _, _, [] -> store_fail (Printf.sprintf "store %s is empty" (Obs.Store.dir store))
      | m, e, newest :: _ ->
        ( Some (Option.value m ~default:newest.Obs.Store.model),
          Some (Option.value e ~default:newest.Obs.Store.engine) )
    in
    let entries = Obs.Store.select ?model ?engine ~last store in
    if List.length entries < 2 then
      store_fail
        (Printf.sprintf "need at least 2 stored runs of model=%s engine=%s, have %d"
           (Option.get model) (Option.get engine) (List.length entries));
    let labeled =
      List.map
        (fun e ->
          match Obs.Store.load store e.Obs.Store.id with
          | Error msg -> store_fail msg
          | Ok (_, report) -> (Printf.sprintf "run %d" e.Obs.Store.id, report))
        entries
    in
    Format.printf "trend: %d runs of model=%s engine=%s@." (List.length entries)
      (Option.get model) (Option.get engine);
    match Obs.Regress.trend labeled with
    | Error msg -> store_fail msg
    | Ok steps ->
      let flagged = ref 0 in
      List.iter
        (fun s ->
          let gated =
            List.filter
              (Obs.Regress.exceeds ~threshold ~time_threshold)
              s.Obs.Regress.step_deltas
          in
          flagged := !flagged + List.length gated;
          if s.Obs.Regress.step_deltas <> [] || s.Obs.Regress.step_meta_diff <> [] then begin
            Format.printf "%s -> %s:@." s.Obs.Regress.from_label s.Obs.Regress.to_label;
            print_meta_diff s.Obs.Regress.step_meta_diff;
            print_deltas ~threshold ~time_threshold s.Obs.Regress.step_deltas
          end)
        steps;
      if !flagged = 0 then Format.printf "OK: no gated drift across %d steps@." (List.length steps)
      else begin
        Format.printf "DRIFT: %d gated delta%s across %d steps@." !flagged
          (if !flagged = 1 then "" else "s")
          (List.length steps);
        exit 1
      end
  in
  Cmd.v (Cmd.info "trend" ~doc)
    Term.(
      const run $ report_store_arg $ model_filter_arg $ engine_filter_arg $ last_arg
      $ report_threshold_arg $ report_time_threshold_arg)

let report_cmd =
  let doc = "query the run-report store (list, show, diff, trend)" in
  Cmd.group (Cmd.info "report" ~doc)
    [ report_list_cmd; report_show_cmd; report_diff_cmd; report_trend_cmd ]

(* ---------- serve / submit / batch / ctl ----------

   The persistent job daemon (docs/SERVE.md) and its clients. The
   daemon schedules submitted models on a worker-domain pool; clients
   talk newline-delimited JSON over a Unix or TCP socket. *)

let address_conv =
  let parse s =
    if String.length s >= 4 && String.sub s 0 4 = "tcp:" then begin
      let rest = String.sub s 4 (String.length s - 4) in
      match String.rindex_opt rest ':' with
      | None -> Error (`Msg "tcp address must be tcp:HOST:PORT")
      | Some i -> (
        let host = String.sub rest 0 i in
        let host = if host = "" then "127.0.0.1" else host in
        match int_of_string_opt (String.sub rest (i + 1) (String.length rest - i - 1)) with
        | Some port when port >= 0 -> Ok (Serve.Protocol.Tcp (host, port))
        | Some _ | None -> Error (`Msg (Printf.sprintf "bad port in %S" s)))
    end
    else begin
      let path =
        if String.length s >= 5 && String.sub s 0 5 = "unix:" then
          String.sub s 5 (String.length s - 5)
        else s
      in
      if path = "" then Error (`Msg "empty socket path") else Ok (Serve.Protocol.Unix_path path)
    end
  in
  Arg.conv (parse, Serve.Protocol.pp_address)

let serve_listen_arg =
  Arg.(
    value
    & opt address_conv (Serve.Protocol.Unix_path "cbq-mc.sock")
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "listen address: $(b,unix:)PATH (default $(b,unix:cbq-mc.sock)) or \
           $(b,tcp:)HOST:PORT (port 0 picks a free port, printed at startup)")

let connect_arg =
  Arg.(
    value
    & opt address_conv (Serve.Protocol.Unix_path "cbq-mc.sock")
    & info [ "connect" ] ~docv:"ADDR"
        ~doc:"daemon address: $(b,unix:)PATH (default $(b,unix:cbq-mc.sock)) or $(b,tcp:)HOST:PORT")

let serve_engine_arg =
  Arg.(
    value & opt string "cbq-bwd"
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:
          (Printf.sprintf "engine to run on the server: %s"
             (String.concat " | " Baselines.Suite.names)))

let budget_of timeout max_conflicts max_aig_nodes max_bdd_nodes =
  { Serve.Protocol.timeout; max_conflicts; max_aig_nodes; max_bdd_nodes }

(* kept as a plain string option: the server validates the name and the
   [Rejected] reason reports the valid set, so a stale client cannot get
   out of sync with a newer server's backend list *)
let serve_quantify_backend_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "quantify-backend" ] ~docv:"BACKEND"
        ~doc:
          (Printf.sprintf
             "per-job quantifier-elimination backend for the CBQ engines (%s); omitted means \
              the server's default"
             (String.concat " | " Cbq.Quantify.backend_names)))

let serve_cmd =
  let doc = "run the persistent model-checking job daemon" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Accepts jobs (AIGER model + engine + budget) over a Unix or TCP socket, schedules \
         them on a pool of worker domains, streams per-job lifecycle events back to each \
         client, and appends one run report per completed job to the store given with \
         $(b,--store) (query it with $(b,cbq-mc report)). The budget flags set a per-job \
         ceiling: client budgets are capped against it, and a resource a client leaves \
         unlimited inherits the ceiling. Protocol schema: docs/SERVE.md.";
    ]
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"worker domains (default: the machine's recommended domain count)")
  in
  let run listen jobs store stats timeout max_conflicts max_aig_nodes max_bdd_nodes =
    if stats then begin
      Obs.reset ();
      Obs.set_enabled true
    end;
    let ceiling = budget_of timeout max_conflicts max_aig_nodes max_bdd_nodes in
    let store = Option.map Obs.Store.open_ store in
    let server =
      try Serve.Server.start ?jobs ~ceiling ?store listen
      with Unix.Unix_error (e, _, arg) ->
        Format.eprintf "cbq-mc serve: cannot listen on %a: %s (%s)@." Serve.Protocol.pp_address
          listen (Unix.error_message e) arg;
        exit 2
    in
    let workers =
      (Serve.Scheduler.stats (Serve.Server.scheduler server)).Serve.Scheduler.workers
    in
    Format.printf "serve: listening on %a (%d workers)@." Serve.Protocol.pp_address
      (Serve.Server.address server) workers;
    Serve.Server.wait server;
    Format.printf "serve: drained and stopped@.";
    if stats then Format.printf "%a" Obs.pp_summary ()
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man)
    Term.(
      const run $ serve_listen_arg $ jobs_arg $ store_opt_arg $ stats_arg $ timeout_arg
      $ max_conflicts_arg $ max_aig_nodes_arg $ max_bdd_nodes_arg)

let connect_client address =
  try Serve.Client.connect address
  with Unix.Unix_error (e, _, _) ->
    Format.eprintf "cbq-mc: cannot connect to %a: %s@." Serve.Protocol.pp_address address
      (Unix.error_message e);
    exit 2

let print_outcome name = function
  | Serve.Client.Finished { verdict; seconds; report; progress; _ } ->
    Format.printf "%s: %s (%.3fs, %d progress frames%s)@." name
      (match verdict with
      | Baselines.Verdict.Proved -> "PROVED"
      | Baselines.Verdict.Falsified d -> Printf.sprintf "FALSIFIED at depth %d" d
      | Baselines.Verdict.Undecided r -> Printf.sprintf "UNDECIDED (%s)" r)
      seconds progress
      (match report with Some r -> Printf.sprintf ", report %d" r | None -> "");
    true
  | Serve.Client.Crashed { message; _ } ->
    Format.printf "%s: FAILED on the server: %s@." name message;
    false
  | Serve.Client.Refused { reason } ->
    Format.printf "%s: REJECTED: %s@." name reason;
    false

let submit_cmd =
  let doc = "submit one job to a running daemon and wait for the verdict" in
  let run connect circuit param aag engine quantify_backend progress timeout max_conflicts
      max_aig_nodes max_bdd_nodes =
    let model, _status = load_model circuit param aag in
    let spec =
      {
        Serve.Client.tag = "cli";
        model_name = Netlist.Model.name model;
        aig = Netlist.Aiger.write model;
        engine;
        budget = budget_of timeout max_conflicts max_aig_nodes max_bdd_nodes;
        quantify_backend;
      }
    in
    let client = connect_client connect in
    let on_event =
      if progress then function
        | Serve.Protocol.Progress { frame; nodes; _ } ->
          Format.eprintf "frame %d: %d nodes@." frame nodes
        | _ -> ()
      else fun _ -> ()
    in
    let outcome =
      try Serve.Client.submit_wait ~on_event client spec
      with Serve.Client.Server_closed msg ->
        Format.eprintf "cbq-mc submit: %s@." msg;
        exit 2
    in
    Serve.Client.close client;
    if not (print_outcome (Netlist.Model.name model) outcome) then exit 1
  in
  Cmd.v (Cmd.info "submit" ~doc)
    Term.(
      const run $ connect_arg $ circuit_arg $ param_arg $ aag_arg $ serve_engine_arg
      $ serve_quantify_backend_arg $ progress_arg $ timeout_arg $ max_conflicts_arg
      $ max_aig_nodes_arg $ max_bdd_nodes_arg)

let batch_cmd =
  let doc = "submit every AIGER file in a directory to a running daemon" in
  let dir_arg =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR" ~doc:"directory of .aag/.aig model files")
  in
  let run connect dir engine quantify_backend timeout max_conflicts max_aig_nodes
      max_bdd_nodes =
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".aag" || Filename.check_suffix f ".aig")
      |> List.sort compare
    in
    if files = [] then begin
      Format.eprintf "cbq-mc batch: no .aag/.aig files in %s@." dir;
      exit 2
    end;
    let budget = budget_of timeout max_conflicts max_aig_nodes max_bdd_nodes in
    let specs =
      List.map
        (fun f ->
          let model = Netlist.Aiger.read_file (Filename.concat dir f) in
          {
            Serve.Client.tag = f;
            model_name = Filename.remove_extension f;
            aig = Netlist.Aiger.write model;
            engine;
            budget;
            quantify_backend;
          })
        files
    in
    let client = connect_client connect in
    let outcomes = Serve.Client.run_batch client specs in
    Serve.Client.close client;
    let ok = ref 0 in
    List.iter2 (fun f o -> if print_outcome f o then incr ok) files outcomes;
    Format.printf "batch: %d/%d jobs finished@." !ok (List.length files);
    if !ok < List.length files then exit 1
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      const run $ connect_arg $ dir_arg $ serve_engine_arg $ serve_quantify_backend_arg
      $ timeout_arg $ max_conflicts_arg $ max_aig_nodes_arg $ max_bdd_nodes_arg)

let ctl_cmd =
  let doc = "control a running daemon: ping, stats or shutdown" in
  let action_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("ping", `Ping); ("stats", `Stats); ("shutdown", `Shutdown) ])) None
      & info [] ~docv:"ACTION" ~doc:"ping | stats | shutdown")
  in
  let run connect action =
    let client = connect_client connect in
    (try
       match action with
       | `Ping ->
         Serve.Client.ping client;
         Format.printf "pong@."
       | `Stats ->
         let queued, running, completed, workers = Serve.Client.stats client in
         Format.printf "queued=%d running=%d completed=%d workers=%d@." queued running completed
           workers
       | `Shutdown ->
         Serve.Client.shutdown_server client;
         Format.printf "server stopped@."
     with Serve.Client.Server_closed msg ->
       Format.eprintf "cbq-mc ctl: %s@." msg;
       exit 2);
    Serve.Client.close client
  in
  Cmd.v (Cmd.info "ctl" ~doc) Term.(const run $ connect_arg $ action_arg)

let () =
  let doc = "circuit-based quantification model checker (DATE'05 reproduction)" in
  let info = Cmd.info "cbq-mc" ~version:"1.0.0" ~doc in
  (* bare `cbq-mc --engine ... --stats-json ...` behaves like `cbq-mc run` *)
  exit
    (Cmd.eval
       (Cmd.group ~default:run_term info
          [
            list_cmd; run_cmd; export_cmd; reduce_cmd; quantify_cmd; cec_cmd; fuzz_cmd; sat_cmd;
            report_cmd; serve_cmd; submit_cmd; batch_cmd; ctl_cmd;
          ]))
